package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Values are stored as
// strings so serialization is deterministic across types.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed stage of the pipeline. Spans nest: children created
// with Child record sub-stages, and concurrent children (e.g. warps
// profiled on the worker pool, or the model chain racing the oracle) may
// be added and ended from different goroutines. All methods are nil-safe
// no-ops so disabled tracing costs one nil check.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

func newSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// NewRootSpan starts a detached root span: timed and nestable like a
// tracer span, but owned by the caller instead of accumulating in a
// Tracer. The flight recorder uses it to capture per-request span trees
// in a long-lived daemon where an unbounded tracer would be a leak.
func NewRootSpan(name string) *Span { return newSpan(name) }

// Child starts a nested span. Returns nil on a nil receiver.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End records the span's duration. Extra Ends are ignored.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

func (s *Span) setAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetStr annotates the span with a string attribute.
func (s *Span) SetStr(key, value string) { s.setAttr(key, value) }

// SetInt annotates the span with an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.setAttr(key, strconv.FormatInt(v, 10))
}

// SetFloat annotates the span with a float attribute.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.setAttr(key, strconv.FormatFloat(v, 'g', 6, 64))
}

// SpanRecord is the serializable form of a span (and its subtree).
//
// StartUnixNano is the span's wall-clock start instant. Exporters that
// place spans on a shared timeline (internal/obs/chrometrace) subtract
// the earliest start in the export, so only the relative offsets matter;
// the absolute value keeps records from different span trees alignable.
type SpanRecord struct {
	Name          string       `json:"name"`
	StartUnixNano int64        `json:"startUnixNano,omitempty"`
	Seconds       float64      `json:"seconds"`
	InFlight      bool         `json:"inFlight,omitempty"`
	Attrs         []Attr       `json:"attrs,omitempty"`
	Children      []SpanRecord `json:"children,omitempty"`
}

// Record snapshots the span subtree. Spans still in flight report their
// duration so far and InFlight=true. Returns a zero record on nil.
func (s *Span) Record() SpanRecord {
	if s == nil {
		return SpanRecord{}
	}
	s.mu.Lock()
	r := SpanRecord{Name: s.name, StartUnixNano: s.start.UnixNano(), Seconds: s.dur.Seconds(), InFlight: !s.ended}
	if !s.ended {
		r.Seconds = time.Since(s.start).Seconds()
	}
	r.Attrs = append(r.Attrs, s.attrs...)
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range kids {
		r.Children = append(r.Children, c.Record())
	}
	return r
}

// Tracer collects top-level spans. A nil *Tracer hands out nil spans.
type Tracer struct {
	mu    sync.Mutex
	roots []*Span
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// StartSpan opens a new top-level span. Returns nil on a nil receiver.
func (t *Tracer) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	s := newSpan(name)
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	return s
}

// Records snapshots every top-level span tree in start order.
func (t *Tracer) Records() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	roots := append([]*Span(nil), t.roots...)
	t.mu.Unlock()
	out := make([]SpanRecord, 0, len(roots))
	for _, s := range roots {
		out = append(out, s.Record())
	}
	return out
}

// WriteJSON serializes every span tree as an indented JSON array.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Records())
}

// WriteTree renders the span trees as a human-readable indented tree,
// one line per span: name, attributes, duration.
func (t *Tracer) WriteTree(w io.Writer) error {
	for _, r := range t.Records() {
		if err := writeTreeNode(w, r, 0); err != nil {
			return err
		}
	}
	return nil
}

func writeTreeNode(w io.Writer, r SpanRecord, depth int) error {
	indent := ""
	for i := 0; i < depth; i++ {
		indent += "  "
	}
	line := indent + r.Name
	for _, a := range r.Attrs {
		line += " " + a.Key + "=" + a.Value
	}
	line += fmt.Sprintf("  %.3fms", r.Seconds*1e3)
	if r.InFlight {
		line += " (in flight)"
	}
	if _, err := fmt.Fprintln(w, line); err != nil {
		return err
	}
	for _, c := range r.Children {
		if err := writeTreeNode(w, c, depth+1); err != nil {
			return err
		}
	}
	return nil
}
