// Package obsflag wires the observability layer (internal/obs) into
// command-line binaries: it registers the shared -metrics, -metrics-out,
// -trace-out, -trace-format and -pprof flags, builds the Observer they
// imply, installs worker-pool instrumentation, and writes the dumps on
// exit.
//
// It lives outside package obs because it depends on internal/parallel
// (for SetMetrics) while parallel itself depends on obs; obs must stay a
// stdlib-only leaf.
package obsflag

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof registers the profiling handlers
	"os"

	"gpumech/internal/obs"
	"gpumech/internal/obs/chrometrace"
	"gpumech/internal/parallel"
)

// Flags holds one binary's parsed observability flags. Zero value is
// unusable; obtain one from Register.
type Flags struct {
	metrics     *bool
	metricsOut  *string
	traceOut    *string
	traceFormat *string
	pprof       *string

	forceMetrics bool

	registry *obs.Registry
	tracer   *obs.Tracer
	pprofLn  net.Listener
}

// Register installs -metrics, -metrics-out, -trace-out and -pprof on fs
// (use flag.CommandLine for a binary's default set).
func Register(fs *flag.FlagSet) *Flags {
	return &Flags{
		metrics:     fs.Bool("metrics", false, "collect pipeline metrics and dump them to stderr on exit"),
		metricsOut:  fs.String("metrics-out", "", "collect pipeline metrics and write them as JSON to this file on exit"),
		traceOut:    fs.String("trace-out", "", "write stage spans to this file and a span tree to stderr"),
		traceFormat: fs.String("trace-format", "spans", "-trace-out format: spans (obs span JSON) or chrome (Trace Event timeline for Perfetto/chrome://tracing)"),
		pprof:       fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)"),
	}
}

// RequireMetrics forces Setup to build a metrics registry (and install
// worker-pool instrumentation) even when neither -metrics nor
// -metrics-out was given. gpumech-serve calls it before Setup: a daemon's
// /metrics endpoint always needs a registry, while the exit-time stderr
// dump still honours the -metrics flag.
func (f *Flags) RequireMetrics() { f.forceMetrics = true }

// Registry returns the metrics registry Setup built (nil when metrics
// collection is disabled).
func (f *Flags) Registry() *obs.Registry { return f.registry }

// Setup acts on the parsed flags: it builds the Observer (nil when no
// collection was requested), installs worker-pool metrics, and starts the
// pprof listener. The listener is bound synchronously so an unusable
// address fails here rather than in a background goroutine; serve errors
// from the background goroutine are logged to stderr, and Finish closes
// the listener.
func (f *Flags) Setup() (*obs.Observer, error) {
	if *f.traceFormat != "spans" && *f.traceFormat != "chrome" {
		return nil, fmt.Errorf("obsflag: unknown -trace-format %q (want spans or chrome)", *f.traceFormat)
	}
	if *f.metrics || *f.metricsOut != "" || f.forceMetrics {
		f.registry = obs.NewRegistry()
		parallel.SetMetrics(f.registry)
	}
	if *f.traceOut != "" {
		f.tracer = obs.NewTracer()
	}
	if *f.pprof != "" {
		ln, err := net.Listen("tcp", *f.pprof)
		if err != nil {
			return nil, fmt.Errorf("obsflag: pprof listener: %w", err)
		}
		f.pprofLn = ln
		fmt.Fprintf(os.Stderr, "pprof: http://%s/debug/pprof/\n", ln.Addr())
		go func() {
			err := http.Serve(ln, nil)
			// Finish closing the listener surfaces as ErrClosed: the
			// normal shutdown path, not worth a log line.
			if err != nil && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintf(os.Stderr, "obsflag: pprof serve: %v\n", err)
			}
		}()
	}
	return obs.NewObserver(f.registry, f.tracer), nil
}

// Finish writes the requested dumps to stderr (see FinishTo) and shuts
// down the pprof listener. Call once, after the pipeline has finished.
func (f *Flags) Finish() error {
	return f.FinishTo(os.Stderr)
}

// FinishTo is the full exit path with an explicit sink for the textual
// dumps: the "-- metrics --" table (with -metrics), the metrics JSON
// archive (to the -metrics-out file), the span dump (to the -trace-out
// file, as span JSON or a Chrome trace per -trace-format) followed by
// the "-- spans --" tree and the spans-written note, and closing the
// -pprof listener. The dumps flush before the listener teardown — part
// of the contract, not an accident of statement order: a scraper watching
// the process through the -pprof listener must be able to observe the
// completed -metrics-out archive before the listener disappears. Finish
// is exactly FinishTo(os.Stderr), so tests exercising FinishTo see the
// real output byte for byte.
func (f *Flags) FinishTo(w io.Writer) error {
	if f.registry != nil && *f.metrics {
		fmt.Fprintln(w, "-- metrics --")
		if err := f.registry.WriteText(w); err != nil {
			return err
		}
	}
	if f.registry != nil && *f.metricsOut != "" {
		if err := writeFile(*f.metricsOut, f.registry.WriteJSON); err != nil {
			return err
		}
	}
	if f.tracer != nil {
		dump := f.tracer.WriteJSON
		if *f.traceFormat == "chrome" {
			dump = func(w io.Writer) error { return chrometrace.Write(w, f.tracer.Records()) }
		}
		if err := writeFile(*f.traceOut, dump); err != nil {
			return err
		}
		fmt.Fprintln(w, "-- spans --")
		if err := f.tracer.WriteTree(w); err != nil {
			return err
		}
		fmt.Fprintf(w, "spans written to %s\n", *f.traceOut)
	}
	if f.pprofLn != nil {
		if err := f.pprofLn.Close(); err != nil {
			return fmt.Errorf("obsflag: closing pprof listener: %w", err)
		}
		f.pprofLn = nil
	}
	return nil
}

// writeFile creates path and streams one dump into it, reporting create,
// write and close errors alike.
func writeFile(path string, dump func(io.Writer) error) error {
	out, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obsflag: %w", err)
	}
	if err := dump(out); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return fmt.Errorf("obsflag: %w", err)
	}
	return nil
}
