// Package obsflag wires the observability layer (internal/obs) into
// command-line binaries: it registers the shared -metrics, -trace-out and
// -pprof flags, builds the Observer they imply, installs worker-pool
// instrumentation, and writes the dumps on exit.
//
// It lives outside package obs because it depends on internal/parallel
// (for SetMetrics) while parallel itself depends on obs; obs must stay a
// stdlib-only leaf.
package obsflag

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof registers the profiling handlers
	"os"

	"gpumech/internal/obs"
	"gpumech/internal/parallel"
)

// Flags holds one binary's parsed observability flags. Zero value is
// unusable; obtain one from Register.
type Flags struct {
	metrics  *bool
	traceOut *string
	pprof    *string

	registry *obs.Registry
	tracer   *obs.Tracer
}

// Register installs -metrics, -trace-out and -pprof on fs (use
// flag.CommandLine for a binary's default set).
func Register(fs *flag.FlagSet) *Flags {
	return &Flags{
		metrics:  fs.Bool("metrics", false, "collect pipeline metrics and dump them to stderr on exit"),
		traceOut: fs.String("trace-out", "", "write stage spans as JSON to this file and a span tree to stderr"),
		pprof:    fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)"),
	}
}

// Setup acts on the parsed flags: it builds the Observer (nil when neither
// -metrics nor -trace-out was given), installs worker-pool metrics, and
// starts the pprof listener. The listener is bound synchronously so an
// unusable address fails here rather than in a background goroutine.
func (f *Flags) Setup() (*obs.Observer, error) {
	if *f.metrics {
		f.registry = obs.NewRegistry()
		parallel.SetMetrics(f.registry)
	}
	if *f.traceOut != "" {
		f.tracer = obs.NewTracer()
	}
	if *f.pprof != "" {
		ln, err := net.Listen("tcp", *f.pprof)
		if err != nil {
			return nil, fmt.Errorf("obsflag: pprof listener: %w", err)
		}
		fmt.Fprintf(os.Stderr, "pprof: http://%s/debug/pprof/\n", ln.Addr())
		go http.Serve(ln, nil)
	}
	return obs.NewObserver(f.registry, f.tracer), nil
}

// Finish writes the requested dumps: the metrics table to stderr, the span
// JSON to the -trace-out file, and the human-readable span tree to stderr.
// Call once, after the pipeline has finished.
func (f *Flags) Finish() error {
	if f.registry != nil {
		fmt.Fprintln(os.Stderr, "-- metrics --")
		if err := f.registry.WriteText(os.Stderr); err != nil {
			return err
		}
	}
	if f.tracer != nil {
		out, err := os.Create(*f.traceOut)
		if err != nil {
			return fmt.Errorf("obsflag: %w", err)
		}
		if err := f.tracer.WriteJSON(out); err != nil {
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "-- spans --")
		if err := f.tracer.WriteTree(os.Stderr); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "spans written to %s\n", *f.traceOut)
	}
	return nil
}

// FinishTo is Finish with an explicit sink for the textual dumps (tests).
func (f *Flags) FinishTo(w io.Writer) error {
	if f.registry != nil {
		if err := f.registry.WriteText(w); err != nil {
			return err
		}
	}
	if f.tracer != nil {
		if err := f.tracer.WriteTree(w); err != nil {
			return err
		}
	}
	return nil
}
