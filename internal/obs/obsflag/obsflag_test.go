package obsflag

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gpumech/internal/parallel"
)

func TestRegisterSetupFinish(t *testing.T) {
	defer parallel.SetMetrics(nil)
	dir := t.TempDir()
	out := filepath.Join(dir, "spans.json")

	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse([]string{"-metrics", "-trace-out", out}); err != nil {
		t.Fatal(err)
	}
	o, err := f.Setup()
	if err != nil {
		t.Fatal(err)
	}
	if o == nil || o.Metrics == nil || o.Tracer == nil {
		t.Fatal("Setup must build a full observer when both flags are set")
	}

	o.Counter("test.count").Inc()
	o.StartSpan("stage").End()
	parallel.ForEach(2, 4, func(int) error { return nil })

	var buf strings.Builder
	if err := f.FinishTo(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "test.count") {
		t.Fatalf("metrics dump missing counter:\n%s", text)
	}
	if !strings.Contains(text, "pool.fanouts") {
		t.Fatalf("pool instrumentation not installed:\n%s", text)
	}
	if !strings.Contains(text, "stage") {
		t.Fatalf("span tree missing:\n%s", text)
	}
}

func TestSetupDisabled(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	o, err := f.Setup()
	if err != nil {
		t.Fatal(err)
	}
	if o != nil {
		t.Fatal("Setup with no flags must return a nil observer")
	}
	if err := f.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestFinishWritesTraceFile(t *testing.T) {
	defer parallel.SetMetrics(nil)
	dir := t.TempDir()
	out := filepath.Join(dir, "spans.json")
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse([]string{"-trace-out", out}); err != nil {
		t.Fatal(err)
	}
	o, err := f.Setup()
	if err != nil {
		t.Fatal(err)
	}
	o.StartSpan("root").End()

	// Finish writes the span tree to stderr; silence it for the test run.
	olderr := os.Stderr
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = null
	err = f.Finish()
	os.Stderr = olderr
	null.Close()
	if err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"root"`) {
		t.Fatalf("trace file missing span:\n%s", data)
	}
}
