package obsflag

import (
	"encoding/json"
	"flag"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gpumech/internal/parallel"
)

func TestRegisterSetupFinish(t *testing.T) {
	defer parallel.SetMetrics(nil)
	dir := t.TempDir()
	out := filepath.Join(dir, "spans.json")

	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse([]string{"-metrics", "-trace-out", out}); err != nil {
		t.Fatal(err)
	}
	o, err := f.Setup()
	if err != nil {
		t.Fatal(err)
	}
	if o == nil || o.Metrics == nil || o.Tracer == nil {
		t.Fatal("Setup must build a full observer when both flags are set")
	}

	o.Counter("test.count").Inc()
	o.StartSpan("stage").End()
	parallel.ForEach(2, 4, func(int) error { return nil })

	var buf strings.Builder
	if err := f.FinishTo(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "test.count") {
		t.Fatalf("metrics dump missing counter:\n%s", text)
	}
	if !strings.Contains(text, "pool.fanouts") {
		t.Fatalf("pool instrumentation not installed:\n%s", text)
	}
	if !strings.Contains(text, "stage") {
		t.Fatalf("span tree missing:\n%s", text)
	}
}

func TestSetupDisabled(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	o, err := f.Setup()
	if err != nil {
		t.Fatal(err)
	}
	if o != nil {
		t.Fatal("Setup with no flags must return a nil observer")
	}
	if err := f.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestFinishWritesTraceFile(t *testing.T) {
	defer parallel.SetMetrics(nil)
	dir := t.TempDir()
	out := filepath.Join(dir, "spans.json")
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse([]string{"-trace-out", out}); err != nil {
		t.Fatal(err)
	}
	o, err := f.Setup()
	if err != nil {
		t.Fatal(err)
	}
	o.StartSpan("root").End()

	// Finish writes the span tree to stderr; silence it for the test run.
	olderr := os.Stderr
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = null
	err = f.Finish()
	os.Stderr = olderr
	null.Close()
	if err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"root"`) {
		t.Fatalf("trace file missing span:\n%s", data)
	}
}

// captureStderr runs fn with os.Stderr redirected to a pipe and returns
// what fn wrote there.
func captureStderr(t *testing.T, fn func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	olderr := os.Stderr
	os.Stderr = w
	ferr := fn()
	os.Stderr = olderr
	w.Close()
	data, rerr := io.ReadAll(r)
	r.Close()
	if ferr != nil {
		t.Fatal(ferr)
	}
	if rerr != nil {
		t.Fatal(rerr)
	}
	return string(data)
}

// TestFinishMatchesFinishTo pins the satellite contract: Finish is
// FinishTo(os.Stderr), headers and all, so the tested path is the real
// output path byte for byte.
func TestFinishMatchesFinishTo(t *testing.T) {
	defer parallel.SetMetrics(nil)
	dir := t.TempDir()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse([]string{"-metrics", "-trace-out", filepath.Join(dir, "spans.json")}); err != nil {
		t.Fatal(err)
	}
	o, err := f.Setup()
	if err != nil {
		t.Fatal(err)
	}
	o.Counter("x.count").Inc()
	o.StartSpan("root").End()

	var want strings.Builder
	if err := f.FinishTo(&want); err != nil {
		t.Fatal(err)
	}
	got := captureStderr(t, f.Finish)
	if got != want.String() {
		t.Fatalf("Finish and FinishTo diverge:\n--- Finish ---\n%s--- FinishTo ---\n%s", got, want.String())
	}
	for _, header := range []string{"-- metrics --", "-- spans --", "spans written to "} {
		if !strings.Contains(got, header) {
			t.Fatalf("Finish output missing %q:\n%s", header, got)
		}
	}
}

func TestMetricsOutWritesJSON(t *testing.T) {
	defer parallel.SetMetrics(nil)
	dir := t.TempDir()
	out := filepath.Join(dir, "metrics.json")
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse([]string{"-metrics-out", out}); err != nil {
		t.Fatal(err)
	}
	o, err := f.Setup()
	if err != nil {
		t.Fatal(err)
	}
	if o == nil || o.Metrics == nil {
		t.Fatal("-metrics-out alone must still build a registry")
	}
	o.Counter("archived.count").Add(5)

	var buf strings.Builder
	if err := f.FinishTo(&buf); err != nil {
		t.Fatal(err)
	}
	// -metrics was not given: no stderr table, only the JSON archive.
	if strings.Contains(buf.String(), "-- metrics --") {
		t.Fatalf("text dump written without -metrics:\n%s", buf.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics archive is not JSON: %v\n%s", err, data)
	}
	if snap.Counters["archived.count"] != 5 {
		t.Fatalf("archive missing counter: %s", data)
	}
}

func TestRequireMetrics(t *testing.T) {
	defer parallel.SetMetrics(nil)
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	f.RequireMetrics()
	o, err := f.Setup()
	if err != nil {
		t.Fatal(err)
	}
	if o == nil || o.Metrics == nil || f.Registry() == nil {
		t.Fatal("RequireMetrics must force a registry with no flags set")
	}
	// No flags were given, so the exit path must stay silent.
	var buf strings.Builder
	if err := f.FinishTo(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("FinishTo wrote output with no dump flags:\n%s", buf.String())
	}
}

// closeProbe wraps a net.Listener and runs a probe at Close time, so a
// test can observe what the rest of the exit path had already done when
// the listener went down.
type closeProbe struct {
	net.Listener
	onClose func()
}

func (p *closeProbe) Close() error {
	p.onClose()
	return p.Listener.Close()
}

// TestArchiveFlushedBeforeListenerTeardown is the regression test for the
// Finish ordering contract: with both -metrics-out and -pprof set, the
// JSON archive must be fully written (valid, parseable JSON on disk)
// before the pprof/metrics listener is torn down. Before the fix the
// listener closed first, so a scraper triggered by the close could find
// a missing or partial archive.
func TestArchiveFlushedBeforeListenerTeardown(t *testing.T) {
	defer parallel.SetMetrics(nil)
	dir := t.TempDir()
	out := filepath.Join(dir, "metrics.json")
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse([]string{"-metrics-out", out, "-pprof", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	_ = captureStderr(t, func() error {
		_, err := f.Setup()
		return err
	})
	if f.pprofLn == nil {
		t.Fatal("Setup must retain the pprof listener")
	}
	f.Registry().Counter("ordered.count").Add(7)

	var archiveAtClose []byte
	var statErr error
	f.pprofLn = &closeProbe{Listener: f.pprofLn, onClose: func() {
		archiveAtClose, statErr = os.ReadFile(out)
	}}
	var buf strings.Builder
	if err := f.FinishTo(&buf); err != nil {
		t.Fatal(err)
	}
	if statErr != nil {
		t.Fatalf("archive not on disk when the listener closed: %v", statErr)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(archiveAtClose, &snap); err != nil {
		t.Fatalf("archive incomplete at listener teardown: %v\n%s", err, archiveAtClose)
	}
	if snap.Counters["ordered.count"] != 7 {
		t.Fatalf("archive at teardown missing data: %s", archiveAtClose)
	}
}

// TestTraceFormatChrome pins the -trace-format=chrome wiring: -trace-out
// receives a Trace Event document instead of span JSON.
func TestTraceFormatChrome(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "req.trace.json")
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse([]string{"-trace-out", out, "-trace-format", "chrome"}); err != nil {
		t.Fatal(err)
	}
	o, err := f.Setup()
	if err != nil {
		t.Fatal(err)
	}
	sp := o.StartSpan("root")
	sp.Child("stage").End()
	sp.End()
	var buf strings.Builder
	if err := f.FinishTo(&buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v\n%s", err, data)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			names[ev.Name] = true
		}
	}
	if !names["root"] || !names["stage"] {
		t.Fatalf("chrome trace missing spans: %s", data)
	}
}

func TestTraceFormatRejected(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse([]string{"-trace-format", "jaeger"}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Setup(); err == nil || !strings.Contains(err.Error(), "trace-format") {
		t.Fatalf("Setup accepted a bogus -trace-format: %v", err)
	}
}

// TestPprofListenerLifecycle pins the satellite fix: Setup retains the
// pprof listener, it serves until Finish, and Finish closes it.
func TestPprofListenerLifecycle(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse([]string{"-pprof", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	_ = captureStderr(t, func() error {
		_, err := f.Setup()
		return err
	})
	if f.pprofLn == nil {
		t.Fatal("Setup must retain the pprof listener")
	}
	addr := f.pprofLn.Addr().String()
	resp, err := http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("pprof not served while running: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status %d", resp.StatusCode)
	}

	var buf strings.Builder
	if err := f.FinishTo(&buf); err != nil {
		t.Fatal(err)
	}
	if f.pprofLn != nil {
		t.Fatal("FinishTo must drop the closed listener")
	}
	if _, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
		t.Fatal("pprof listener still accepting after Finish")
	}
}
