package obs

import (
	"fmt"
	"math"
	"testing"
)

func TestQuantileUniform(t *testing.T) {
	h := newHistogram()
	// 1000 evenly spread observations over (0, 1]: quantiles should land
	// near q itself, within one bucket's relative width (factor of 2).
	const n = 1000
	for i := 1; i <= n; i++ {
		h.Observe(float64(i) / n)
	}
	reg := NewRegistry()
	reg.mu.Lock()
	reg.hists["u"] = h
	reg.mu.Unlock()
	s := reg.Snapshot().Histograms["u"]
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := s.Quantile(q)
		if got < q/2 || got > q*2 {
			t.Errorf("Quantile(%g) = %g, want within [%g, %g]", q, got, q/2, q*2)
		}
	}
	if got := s.Quantile(1); got != s.Max {
		t.Errorf("Quantile(1) = %g, want Max %g", got, s.Max)
	}
	if got := s.Quantile(0); got < s.Min {
		t.Errorf("Quantile(0) = %g, below Min %g", got, s.Min)
	}
	// Out-of-range q clamps instead of panicking.
	if got := s.Quantile(2); got != s.Max {
		t.Errorf("Quantile(2) = %g, want Max", got)
	}
	if got := s.Quantile(-1); got < s.Min || got > s.Max {
		t.Errorf("Quantile(-1) = %g outside [Min, Max]", got)
	}
}

func TestQuantileSingleObservation(t *testing.T) {
	h := newHistogram()
	h.Observe(0.25)
	reg := NewRegistry()
	reg.mu.Lock()
	reg.hists["one"] = h
	reg.mu.Unlock()
	s := reg.Snapshot().Histograms["one"]
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 0.25 {
			t.Errorf("Quantile(%g) = %g, want the only observation 0.25", q, got)
		}
	}
}

func TestQuantileEmpty(t *testing.T) {
	var s HistSnapshot
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile = %g, want 0", got)
	}
	s.Buckets = make([]int64, NumBuckets)
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("zero-count Quantile = %g, want 0", got)
	}
}

// TestQuantileTopBucket pins the open-ended bucket rule: when the rank
// lands in the unbounded last bucket the estimator answers the observed
// maximum rather than interpolating toward infinity.
func TestQuantileTopBucket(t *testing.T) {
	h := newHistogram()
	huge := math.Ldexp(1, histMinExp+histBuckets+4) // beyond the last bound
	h.Observe(huge)
	h.Observe(2 * huge)
	reg := NewRegistry()
	reg.mu.Lock()
	reg.hists["top"] = h
	reg.mu.Unlock()
	s := reg.Snapshot().Histograms["top"]
	if got := s.Quantile(0.99); got != 2*huge {
		t.Fatalf("top-bucket Quantile = %g, want Max %g", got, 2*huge)
	}
}

func TestFlightRecorderRecentRing(t *testing.T) {
	f := NewFlightRecorder(3)
	for i := 0; i < 5; i++ {
		f.Add(FlightRecord{ID: fmt.Sprintf("r%d", i), Seconds: 0.001})
	}
	s := f.Snapshot()
	if s.Capacity != 3 {
		t.Fatalf("capacity %d, want 3", s.Capacity)
	}
	if len(s.Recent) != 3 {
		t.Fatalf("recent holds %d, want 3", len(s.Recent))
	}
	for i, want := range []string{"r4", "r3", "r2"} {
		if s.Recent[i].ID != want {
			t.Fatalf("recent[%d] = %q, want %q (newest first)", i, s.Recent[i].ID, want)
		}
	}
}

func TestFlightRecorderSlowestBoard(t *testing.T) {
	f := NewFlightRecorder(3)
	durs := []float64{0.010, 0.002, 0.500, 0.001, 0.100, 0.050}
	for i, d := range durs {
		f.Add(FlightRecord{ID: fmt.Sprintf("r%d", i), Seconds: d})
	}
	s := f.Snapshot()
	if len(s.Slowest) != 3 {
		t.Fatalf("slowest holds %d, want 3", len(s.Slowest))
	}
	for i, want := range []float64{0.500, 0.100, 0.050} {
		if s.Slowest[i].Seconds != want {
			t.Fatalf("slowest[%d] = %gs, want %gs (descending)", i, s.Slowest[i].Seconds, want)
		}
	}
	// A fast request must not displace a slower resident.
	f.Add(FlightRecord{ID: "fast", Seconds: 0.003})
	if s := f.Snapshot(); s.Slowest[2].Seconds != 0.050 {
		t.Fatalf("fast request displaced a slower record: %+v", s.Slowest)
	}
}

func TestFlightRecorderPartialFill(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Add(FlightRecord{ID: "only", Seconds: 0.002})
	s := f.Snapshot()
	if len(s.Recent) != 1 || s.Recent[0].ID != "only" {
		t.Fatalf("partial ring snapshot wrong: %+v", s.Recent)
	}
	if len(s.Slowest) != 1 {
		t.Fatalf("slowest board wrong under partial fill: %+v", s.Slowest)
	}
}

func TestFlightRecorderFind(t *testing.T) {
	f := NewFlightRecorder(2)
	f.Add(FlightRecord{ID: "slow", Seconds: 1.0})
	f.Add(FlightRecord{ID: "a", Seconds: 0.001})
	f.Add(FlightRecord{ID: "b", Seconds: 0.002})
	// "slow" has rotated out of the recent ring but survives on the
	// slowest board — exactly the outlier /debug/flightrec wants back.
	if _, ok := f.Find("slow"); !ok {
		t.Fatal("slow outlier not findable after ring rotation")
	}
	if r, ok := f.Find("b"); !ok || r.ID != "b" {
		t.Fatalf("Find(b) = %+v, %v", r, ok)
	}
	if _, ok := f.Find("nope"); ok {
		t.Fatal("Find invented a record")
	}
}

func TestFlightRecorderDisabled(t *testing.T) {
	if f := NewFlightRecorder(0); f != nil {
		t.Fatal("NewFlightRecorder(0) must return nil")
	}
	var f *FlightRecorder
	f.Add(FlightRecord{ID: "x"}) // must not panic
	if s := f.Snapshot(); s.Capacity != 0 || s.Recent != nil || s.Slowest != nil {
		t.Fatalf("nil recorder snapshot not zero: %+v", s)
	}
	if _, ok := f.Find("x"); ok {
		t.Fatal("nil recorder found a record")
	}
}
