package chrometrace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gpumech/internal/obs"
)

var update = flag.Bool("update", false, "rewrite testdata goldens from current exporter output")

// fixedTree is a stable two-request span forest with nested stages,
// attributes, an in-flight span, and characters that need escaping —
// everything the exporter has to place and encode.
func fixedTree() []obs.SpanRecord {
	base := int64(1_700_000_000_000_000_000)
	return []obs.SpanRecord{
		{
			Name: "http.evaluate", StartUnixNano: base, Seconds: 0.010,
			Attrs: []obs.Attr{{Key: "req.id", Value: "ab12-1"}, {Key: "kernel", Value: "sdk_vectoradd"}},
			Children: []obs.SpanRecord{
				{Name: "decode", StartUnixNano: base + 100_000, Seconds: 0.0001},
				{
					Name: "estimate", StartUnixNano: base + 300_000, Seconds: 0.009,
					Children: []obs.SpanRecord{
						{Name: "interval-profiling", StartUnixNano: base + 400_000, Seconds: 0.004},
						{Name: "clustering", StartUnixNano: base + 4_500_000, Seconds: 0.002},
					},
				},
				{Name: "encode", StartUnixNano: base + 9_500_000, Seconds: 0.0004},
			},
		},
		{
			Name: "http.kernels \"quoted\\weird\nname\"", StartUnixNano: base + 20_000_000,
			Seconds: 0.002, InFlight: true,
			Attrs: []obs.Attr{{Key: "status", Value: "200"}},
		},
	}
}

// TestGolden pins the export byte-for-byte: a stable span tree must
// render to exactly the checked-in document (regenerate with -update).
func TestGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, fixedTree()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden.trace.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs/chrometrace -update` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("export diverged from golden:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// traceDoc is the Trace Event JSON Object Format shape Perfetto loads.
type traceDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Ph   string            `json:"ph"`
		Pid  int               `json:"pid"`
		Tid  int               `json:"tid"`
		Ts   float64           `json:"ts"`
		Dur  float64           `json:"dur"`
		Name string            `json:"name"`
		Args map[string]string `json:"args"`
	} `json:"traceEvents"`
}

// TestExportIsValidTraceEventJSON decodes the export against the format's
// schema: every event is an M or X phase with integer pid/tid, X events
// carry non-negative ts/dur microseconds, children sit within the parent
// timeline, and the in-flight marker lands in args.
func TestExportIsValidTraceEventJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, fixedTree()); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q", doc.DisplayTimeUnit)
	}
	// 7 spans + process_name + 2 thread_name metadata events.
	if len(doc.TraceEvents) != 10 {
		t.Fatalf("got %d events, want 10", len(doc.TraceEvents))
	}
	spans := map[string]int{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name != "process_name" && ev.Name != "thread_name" {
				t.Errorf("unexpected metadata event %q", ev.Name)
			}
		case "X":
			spans[ev.Name]++
			if ev.Ts < 0 || ev.Dur < 0 {
				t.Errorf("span %q has negative ts/dur: %g/%g", ev.Name, ev.Ts, ev.Dur)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	for _, want := range []string{"http.evaluate", "decode", "estimate", "interval-profiling", "clustering", "encode"} {
		if spans[want] != 1 {
			t.Errorf("span %q appears %d times, want 1", want, spans[want])
		}
	}
	// The root starts at the anchor; the first child 100µs later.
	var rootTs, decodeTs float64 = -1, -1
	for _, ev := range doc.TraceEvents {
		switch ev.Name {
		case "http.evaluate":
			rootTs = ev.Ts
			if ev.Args["req.id"] != "ab12-1" || ev.Args["kernel"] != "sdk_vectoradd" {
				t.Errorf("root args lost attrs: %+v", ev.Args)
			}
		case "decode":
			decodeTs = ev.Ts
		}
		if ev.Ph == "X" && strings.HasPrefix(ev.Name, "http.kernels") {
			if ev.Args["inFlight"] != "true" {
				t.Errorf("in-flight span missing marker: %+v", ev.Args)
			}
		}
	}
	if rootTs != 0 {
		t.Errorf("anchor span ts = %g, want 0", rootTs)
	}
	if decodeTs != 100 {
		t.Errorf("decode ts = %gµs, want 100", decodeTs)
	}
}

// TestWriteFromLiveTracer exercises the real capture path: spans from a
// live tracer (wall-clock start times) must export to a loadable
// document with every span present.
func TestWriteFromLiveTracer(t *testing.T) {
	tr := obs.NewTracer()
	root := tr.StartSpan("request")
	root.SetStr("id", "x-1")
	c := root.Child("stage")
	c.End()
	root.End()

	var buf bytes.Buffer
	if err := Write(&buf, tr.Records()); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("live export invalid: %v\n%s", err, buf.Bytes())
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			names[ev.Name] = true
			if ev.Ts < 0 {
				t.Errorf("span %q before the anchor: ts %g", ev.Name, ev.Ts)
			}
		}
	}
	if !names["request"] || !names["stage"] {
		t.Fatalf("live spans missing from export: %v", names)
	}
}

func TestWriteEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("empty export invalid: %s", buf.Bytes())
	}
	if err := WriteOne(&buf, obs.SpanRecord{Name: "solo", Seconds: 0.001}); err != nil {
		t.Fatal(err)
	}
}

// FuzzWriteEscaping hammers the escaping/encoding path: arbitrary (often
// invalid-UTF-8) names, attribute keys and values must still produce a
// syntactically valid JSON document that decodes to the same number of
// events.
func FuzzWriteEscaping(f *testing.F) {
	f.Add("plain", "key", "value", 0.001, int64(1000))
	f.Add(`quote"back\slash`, "new\nline", "tab\ttab", -1.5, int64(-5))
	f.Add("\x00\x1f control", "\xff\xfe bad utf8", "emoji ⚙️", 1e300, int64(1<<60))
	f.Add("", "", "", 0.0, int64(0))
	f.Fuzz(func(t *testing.T, name, key, val string, secs float64, start int64) {
		rec := obs.SpanRecord{
			Name: name, StartUnixNano: start, Seconds: secs, InFlight: secs < 0,
			Attrs: []obs.Attr{{Key: key, Value: val}},
			Children: []obs.SpanRecord{
				{Name: val, StartUnixNano: start + 1, Seconds: secs / 2,
					Attrs: []obs.Attr{{Key: name, Value: key}}},
			},
		}
		var buf bytes.Buffer
		if err := Write(&buf, []obs.SpanRecord{rec}); err != nil {
			t.Fatal(err)
		}
		var doc traceDoc
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatalf("unparseable export for %q/%q/%q: %v\n%s", name, key, val, err, buf.Bytes())
		}
		// process_name + thread_name + 2 spans, regardless of content.
		if len(doc.TraceEvents) != 4 {
			t.Fatalf("got %d events, want 4", len(doc.TraceEvents))
		}
	})
}
