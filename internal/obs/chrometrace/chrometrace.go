// Package chrometrace renders obs span trees in the Trace Event Format —
// the JSON timeline schema loaded by Perfetto and chrome://tracing — so a
// request's per-stage breakdown (or a whole diagnostic run) can be
// inspected on an interactive timeline instead of an indented text tree.
//
// The export is the JSON Object Format variant ({"traceEvents": [...]}):
// one "complete" event (ph "X") per span carrying its start, duration and
// attributes, plus metadata events naming the process and one virtual
// thread per root span. Spans of one tree share a thread, so nesting
// renders as a flame graph; concurrent children simply overlap.
//
// Write is a pure function of its input records: timestamps are offsets
// from the earliest span start in the export, so a fixed span tree
// produces byte-identical output — the property the golden test pins.
package chrometrace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"unicode/utf8"

	"gpumech/internal/obs"
)

// Process identity in the export. The format requires pid/tid integers;
// a single-process export uses one fixed pid.
const pid = 1

// Write renders the span trees as one Trace Event JSON document. Records
// are placed on a shared timeline anchored at the earliest StartUnixNano
// in the export (records that predate it clamp to 0, which cannot happen
// for trees captured from one tracer). An empty record set yields a
// valid document with only the process-name metadata event.
func Write(w io.Writer, records []obs.SpanRecord) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	ew := &eventWriter{w: bw}
	ew.metadata("process_name", pid, 0, "name", "gpumech")
	anchor := earliestStart(records)
	for i, r := range records {
		tid := i + 1
		ew.metadata("thread_name", pid, tid, "name", r.Name)
		writeSpan(ew, r, anchor, tid)
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}

// WriteOne renders a single span tree; the common flight-recorder case.
func WriteOne(w io.Writer, record obs.SpanRecord) error {
	return Write(w, []obs.SpanRecord{record})
}

// earliestStart finds the timeline anchor: the minimum StartUnixNano over
// every span in every tree. Children cannot start before their parent
// span was created, but scanning the full forest keeps the anchor right
// even for hand-built records.
func earliestStart(records []obs.SpanRecord) int64 {
	min := int64(math.MaxInt64)
	var walk func(r obs.SpanRecord)
	walk = func(r obs.SpanRecord) {
		if r.StartUnixNano < min {
			min = r.StartUnixNano
		}
		for _, c := range r.Children {
			walk(c)
		}
	}
	for _, r := range records {
		walk(r)
	}
	if min == math.MaxInt64 {
		return 0
	}
	return min
}

func writeSpan(ew *eventWriter, r obs.SpanRecord, anchor int64, tid int) {
	ew.complete(r, anchor, tid)
	for _, c := range r.Children {
		writeSpan(ew, c, anchor, tid)
	}
}

// eventWriter emits the traceEvents array elements, tracking the comma
// state. Write errors park in the bufio.Writer and surface at Flush.
type eventWriter struct {
	w     *bufio.Writer
	wrote bool
}

func (e *eventWriter) sep() {
	if e.wrote {
		e.w.WriteByte(',')
	}
	e.wrote = true
}

// metadata emits a ph "M" event ({"name":..., "args":{key: value}}).
func (e *eventWriter) metadata(name string, pid, tid int, key, value string) {
	e.sep()
	fmt.Fprintf(e.w, `{"ph":"M","pid":%d,"tid":%d,"name":%s,"args":{%s:%s}}`,
		pid, tid, quote(name), quote(key), quote(value))
}

// complete emits a ph "X" event for one span: ts and dur in microseconds
// (the format's unit), name, and the span attributes as args.
func (e *eventWriter) complete(r obs.SpanRecord, anchor int64, tid int) {
	e.sep()
	ts := float64(r.StartUnixNano-anchor) / 1e3
	if ts < 0 {
		ts = 0
	}
	dur := r.Seconds * 1e6
	if dur < 0 {
		dur = 0
	}
	fmt.Fprintf(e.w, `{"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"name":%s`,
		pid, tid, formatNum(ts), formatNum(dur), quote(r.Name))
	if len(r.Attrs) > 0 || r.InFlight {
		e.w.WriteString(`,"args":{`)
		first := true
		for _, a := range r.Attrs {
			if !first {
				e.w.WriteByte(',')
			}
			first = false
			e.w.WriteString(quote(a.Key))
			e.w.WriteByte(':')
			e.w.WriteString(quote(a.Value))
		}
		if r.InFlight {
			if !first {
				e.w.WriteByte(',')
			}
			e.w.WriteString(`"inFlight":"true"`)
		}
		e.w.WriteByte('}')
	}
	e.w.WriteByte('}')
}

// formatNum renders a microsecond quantity as a JSON number. JSON has no
// NaN or infinities; they clamp to 0 so a corrupt record cannot make the
// document unloadable.
func formatNum(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "0"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// quote renders s as a JSON string. It escapes the two mandatory
// characters (quote, backslash), control characters, and invalid UTF-8
// (as the replacement character, which encoding/json also substitutes),
// so arbitrary span names and attribute values — whatever a fuzzer or a
// hostile kernel name supplies — always yield a parseable document.
func quote(s string) string {
	buf := make([]byte, 0, len(s)+2)
	buf = append(buf, '"')
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			switch {
			case c == '"':
				buf = append(buf, '\\', '"')
			case c == '\\':
				buf = append(buf, '\\', '\\')
			case c == '\n':
				buf = append(buf, '\\', 'n')
			case c == '\r':
				buf = append(buf, '\\', 'r')
			case c == '\t':
				buf = append(buf, '\\', 't')
			case c < 0x20:
				buf = append(buf, []byte(fmt.Sprintf(`\u%04x`, c))...)
			default:
				buf = append(buf, c)
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			buf = append(buf, []byte("�")...)
			i++
			continue
		}
		buf = append(buf, s[i:i+size]...)
		i += size
	}
	return string(append(buf, '"'))
}
