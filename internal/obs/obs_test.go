package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
	var nilC *Counter
	nilC.Inc()
	nilC.Add(7)
	if got := nilC.Value(); got != 0 {
		t.Fatalf("nil Counter Value = %d, want 0", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(3)
	g.Add(2)
	if got := g.Value(); got != 5 {
		t.Fatalf("Value = %g, want 5", got)
	}
	g.Add(-4)
	if got := g.Value(); got != 1 {
		t.Fatalf("Value = %g, want 1", got)
	}
	if got := g.Max(); got != 5 {
		t.Fatalf("Max = %g, want 5", got)
	}
	var nilG *Gauge
	nilG.Set(9)
	nilG.Add(1)
	if nilG.Value() != 0 || nilG.Max() != 0 {
		t.Fatal("nil Gauge must read 0")
	}
}

func TestGaugeConcurrent(t *testing.T) {
	var g Gauge
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != workers*per {
		t.Fatalf("concurrent Add lost updates: %g, want %d", got, workers*per)
	}
}

func TestHistogram(t *testing.T) {
	h := newHistogram()
	for _, v := range []float64{1, 2, 3, 4} {
		h.Observe(v)
	}
	if got := h.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	if got := h.Sum(); got != 10 {
		t.Fatalf("Sum = %g, want 10", got)
	}
	if got := h.Mean(); got != 2.5 {
		t.Fatalf("Mean = %g, want 2.5", got)
	}
	if h.Min() != 1 || h.Max() != 4 {
		t.Fatalf("Min/Max = %g/%g, want 1/4", h.Min(), h.Max())
	}
	h.Observe(math.NaN())
	if got := h.Count(); got != 4 {
		t.Fatalf("NaN was recorded: Count = %d, want 4", got)
	}

	empty := newHistogram()
	if empty.Count() != 0 || empty.Sum() != 0 || empty.Mean() != 0 || empty.Min() != 0 || empty.Max() != 0 {
		t.Fatal("empty histogram must read all zeros")
	}

	var nilH *Histogram
	nilH.Observe(1)
	if nilH.Count() != 0 || nilH.Sum() != 0 {
		t.Fatal("nil Histogram must read 0")
	}
}

func TestBucketIndex(t *testing.T) {
	// Every positive value must land in a bucket whose bound contains it,
	// and indices must be monotone in the value.
	prev := -1
	for exp := -40; exp <= 40; exp++ {
		v := math.Ldexp(1, exp)
		i := bucketIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIndex(%g) = %d out of range", v, i)
		}
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %g: %d < %d", v, i, prev)
		}
		prev = i
		if v > BucketBound(i) {
			t.Fatalf("value %g above its bucket bound %g (bucket %d)", v, BucketBound(i), i)
		}
	}
	if bucketIndex(0) != 0 || bucketIndex(-5) != 0 {
		t.Fatal("non-positive values must clamp to bucket 0")
	}
	if bucketIndex(math.MaxFloat64) != histBuckets-1 {
		t.Fatal("huge values must clamp to the last bucket")
	}
	if !math.IsInf(BucketBound(histBuckets-1), 1) {
		t.Fatal("last bucket bound must be +Inf")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a")
	c2 := r.Counter("a")
	if c1 != c2 {
		t.Fatal("same name must return the same counter")
	}
	c1.Add(3)
	r.Gauge("g").Set(1.5)
	r.Histogram("h").Observe(2)

	s := r.Snapshot()
	if s.NumSeries() != 3 {
		t.Fatalf("NumSeries = %d, want 3", s.NumSeries())
	}
	if s.Counters["a"] != 3 {
		t.Fatalf("snapshot counter = %d, want 3", s.Counters["a"])
	}
	if s.Gauges["g"] != 1.5 {
		t.Fatalf("snapshot gauge = %g, want 1.5", s.Gauges["g"])
	}
	if hs := s.Histograms["h"]; hs.Count != 1 || hs.Sum != 2 {
		t.Fatalf("snapshot hist = %+v", hs)
	}

	var nilR *Registry
	if nilR.Counter("x") != nil || nilR.Gauge("x") != nil || nilR.Histogram("x") != nil {
		t.Fatal("nil Registry must hand out nil instruments")
	}
	if nilR.Snapshot().NumSeries() != 0 {
		t.Fatal("nil Registry snapshot must be empty")
	}
}

func TestRegistryWriteTextAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Counter("a.count").Add(1)
	r.Gauge("depth").Set(4)
	r.Histogram("lat").Observe(0.5)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "counter a.count") || !strings.Contains(text, "counter b.count") {
		t.Fatalf("missing counters in text dump:\n%s", text)
	}
	if strings.Index(text, "a.count") > strings.Index(text, "b.count") {
		t.Fatalf("counters not sorted:\n%s", text)
	}
	if !strings.Contains(text, "gauge   depth") || !strings.Contains(text, "hist    lat") {
		t.Fatalf("missing gauge/hist in text dump:\n%s", text)
	}

	buf.Reset()
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v", err)
	}
	if snap.Counters["b.count"] != 2 {
		t.Fatalf("JSON round-trip lost counter: %+v", snap)
	}
}

func TestSpanNesting(t *testing.T) {
	tr := NewTracer()
	root := tr.StartSpan("root")
	root.SetStr("kernel", "k1")
	root.SetInt("warps", 32)
	root.SetFloat("cpi", 1.5)
	child := root.Child("child")
	grand := child.Child("grand")
	grand.End()
	child.End()
	root.End()
	root.End() // second End must be ignored

	recs := tr.Records()
	if len(recs) != 1 {
		t.Fatalf("got %d roots, want 1", len(recs))
	}
	r := recs[0]
	if r.Name != "root" || r.InFlight {
		t.Fatalf("root record = %+v", r)
	}
	if len(r.Attrs) != 3 || r.Attrs[0].Value != "k1" || r.Attrs[1].Value != "32" || r.Attrs[2].Value != "1.5" {
		t.Fatalf("attrs = %+v", r.Attrs)
	}
	if len(r.Children) != 1 || r.Children[0].Name != "child" {
		t.Fatalf("children = %+v", r.Children)
	}
	if len(r.Children[0].Children) != 1 || r.Children[0].Children[0].Name != "grand" {
		t.Fatalf("grandchildren = %+v", r.Children[0].Children)
	}
}

func TestSpanInFlight(t *testing.T) {
	tr := NewTracer()
	sp := tr.StartSpan("open")
	time.Sleep(time.Millisecond)
	recs := tr.Records()
	if !recs[0].InFlight {
		t.Fatal("unended span must report InFlight")
	}
	if recs[0].Seconds <= 0 {
		t.Fatal("in-flight span must report elapsed time so far")
	}
	sp.End()
	if tr.Records()[0].InFlight {
		t.Fatal("ended span must not report InFlight")
	}
}

func TestSpanNilSafety(t *testing.T) {
	var sp *Span
	sp.End()
	sp.SetStr("k", "v")
	sp.SetInt("k", 1)
	sp.SetFloat("k", 1.0)
	if c := sp.Child("c"); c != nil {
		t.Fatal("nil span Child must be nil")
	}
	if r := sp.Record(); r.Name != "" {
		t.Fatalf("nil span Record = %+v", r)
	}
	var tr *Tracer
	if tr.StartSpan("x") != nil {
		t.Fatal("nil tracer StartSpan must be nil")
	}
	if tr.Records() != nil {
		t.Fatal("nil tracer Records must be nil")
	}
}

func TestTracerWriteJSONAndTree(t *testing.T) {
	tr := NewTracer()
	sp := tr.StartSpan("estimate")
	sp.SetStr("kernel", "k")
	sp.Child("cache-sim").End()
	sp.End()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var recs []SpanRecord
	if err := json.Unmarshal(buf.Bytes(), &recs); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v", err)
	}
	if len(recs) != 1 || recs[0].Children[0].Name != "cache-sim" {
		t.Fatalf("JSON round-trip = %+v", recs)
	}

	buf.Reset()
	if err := tr.WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	tree := buf.String()
	if !strings.Contains(tree, "estimate kernel=k") || !strings.Contains(tree, "  cache-sim") {
		t.Fatalf("tree dump missing content:\n%s", tree)
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	tr := NewTracer()
	root := tr.StartSpan("root")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := root.Child("worker")
			c.SetInt("i", 1)
			c.End()
		}()
	}
	wg.Wait()
	root.End()
	if got := len(tr.Records()[0].Children); got != 16 {
		t.Fatalf("got %d children, want 16", got)
	}
}

func TestObserver(t *testing.T) {
	if NewObserver(nil, nil) != nil {
		t.Fatal("NewObserver(nil, nil) must be nil")
	}

	var nilO *Observer
	if nilO.StartSpan("x") != nil {
		t.Fatal("nil observer StartSpan must be nil")
	}
	if nilO.WithSpan(nil) != nil {
		t.Fatal("nil observer WithSpan must stay nil")
	}
	if nilO.Counter("c") != nil || nilO.Gauge("g") != nil || nilO.Histogram("h") != nil {
		t.Fatal("nil observer must hand out nil instruments")
	}
	nilO.ObserveSince("h", time.Now()) // must not panic

	r := NewRegistry()
	tr := NewTracer()
	o := NewObserver(r, tr)
	sp := o.StartSpan("root")
	child := o.WithSpan(sp)
	child.StartSpan("nested").End()
	sp.End()
	recs := tr.Records()
	if len(recs) != 1 || len(recs[0].Children) != 1 || recs[0].Children[0].Name != "nested" {
		t.Fatalf("WithSpan did not nest: %+v", recs)
	}
	o.Counter("c").Inc()
	if r.Counter("c").Value() != 1 {
		t.Fatal("observer counter did not reach the registry")
	}
	o.ObserveSince("lat", time.Now().Add(-time.Millisecond))
	if r.Histogram("lat").Count() != 1 {
		t.Fatal("ObserveSince did not record")
	}

	// Metrics-only observer: spans disabled, metrics live.
	mo := NewObserver(r, nil)
	if mo == nil || mo.StartSpan("x") != nil {
		t.Fatal("metrics-only observer must return nil spans")
	}
	// Tracer-only observer: ObserveSince must be a no-op, not a panic.
	to := NewObserver(nil, tr)
	to.ObserveSince("never", time.Now())
	if r.Histogram("never").Count() != 0 {
		t.Fatal("tracer-only observer must not record metrics")
	}
}

// The disabled path must not allocate: instrumented hot loops run with nil
// instruments everywhere when observability is off.
func TestDisabledPathDoesNotAllocate(t *testing.T) {
	var nilO *Observer
	var nilC *Counter
	var nilH *Histogram
	var nilS *Span
	var nilF *FlightRecorder
	allocs := testing.AllocsPerRun(100, func() {
		nilC.Inc()
		nilH.Observe(1.5)
		nilS.End()
		sp := nilO.StartSpan("x")
		sp.SetInt("k", 1)
		sp.End()
		nilO.ObserveSince("h", time.Time{})
		nilF.Add(FlightRecord{})
	})
	if allocs != 0 {
		t.Fatalf("disabled instrumentation allocated %.1f times per run, want 0", allocs)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := newHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i&1023) * 1e-6)
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i))
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	var o *Observer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := o.StartSpan("stage")
		sp.SetInt("i", int64(i))
		sp.End()
	}
}

func TestSnapshotBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	vals := []float64{1e-9, 0.001, 0.001, 1.5, 1e12}
	for _, v := range vals {
		h.Observe(v)
	}
	s := r.Snapshot()
	hs := s.Histograms["lat"]
	if len(hs.Buckets) != NumBuckets {
		t.Fatalf("got %d buckets, want %d", len(hs.Buckets), NumBuckets)
	}
	var total int64
	for _, c := range hs.Buckets {
		if c < 0 {
			t.Fatalf("negative bucket count %d", c)
		}
		total += c
	}
	if total != int64(len(vals)) || total != hs.Count {
		t.Fatalf("bucket total %d, count %d, want %d", total, hs.Count, len(vals))
	}
	// Each observation must land in the bucket whose bound covers it.
	for _, v := range vals {
		idx := bucketIndex(v)
		if hs.Buckets[idx] == 0 {
			t.Fatalf("value %g not counted in bucket %d", v, idx)
		}
		if v > BucketBound(idx) {
			t.Fatalf("value %g exceeds its bucket bound %g", v, BucketBound(idx))
		}
	}
}

func TestBucketBoundMonotone(t *testing.T) {
	for i := 1; i < NumBuckets; i++ {
		if !(BucketBound(i) > BucketBound(i-1)) {
			t.Fatalf("BucketBound(%d)=%g not above BucketBound(%d)=%g",
				i, BucketBound(i), i-1, BucketBound(i-1))
		}
	}
	if !math.IsInf(BucketBound(NumBuckets-1), 1) {
		t.Fatalf("last bucket bound %g, want +Inf", BucketBound(NumBuckets-1))
	}
}
