// Package obs is the repository's zero-dependency observability layer: a
// lock-cheap metrics registry (counters, gauges, histograms with atomic
// hot paths), a stage tracer emitting nested span records, and an
// Observer handle that bundles both for threading through the pipeline.
//
// Every instrument and span method is nil-safe: calling Add, Observe,
// Child, SetInt or End on a nil receiver is a no-op that performs no
// allocation, so instrumented code needs no "is observability on?"
// branches and pays nothing when it is off. The layer never touches the
// values it observes — enabling it cannot change any model figure.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer series.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float value supporting set, delta and
// running-max updates from concurrent writers.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
	max  atomic.Uint64 // float64 bits of the high-water mark
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
	g.noteMax(v)
}

// Add applies a delta with a compare-and-swap loop. No-op on nil.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			g.noteMax(v)
			return
		}
	}
}

func (g *Gauge) noteMax(v float64) {
	for {
		old := g.max.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if g.max.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Max returns the high-water mark since creation (0 on a nil receiver).
func (g *Gauge) Max() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.max.Load())
}

// histBuckets spans base-2 exponential buckets from 2^histMinExp (~1e-9,
// a nanosecond when observing seconds) to 2^(histMinExp+histBuckets-2)
// (~8.6e9); values outside the range clamp into the edge buckets.
const (
	histBuckets = 64
	histMinExp  = -30
)

// NumBuckets is the number of buckets every Histogram carries. Bucket i
// covers observations up to and including BucketBound(i); the last bucket
// is unbounded (BucketBound(NumBuckets-1) is +Inf). Exporters that need
// the full distribution — internal/obs/promtext renders it in Prometheus
// text exposition format — iterate i in [0, NumBuckets).
const NumBuckets = histBuckets

// Histogram accumulates a distribution in exponential base-2 buckets.
// Observations are lock-free: bucket counts, the count, the sum and the
// min/max are all maintained with atomics, so the hot path never blocks.
type Histogram struct {
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
	minBits atomic.Uint64 // float64 bits, +Inf until first observation
	maxBits atomic.Uint64 // float64 bits, -Inf until first observation
	buckets [histBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

func bucketIndex(v float64) int {
	if v <= 0 {
		return 0
	}
	idx := math.Ilogb(v) - histMinExp + 1
	if idx < 0 {
		return 0
	}
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// BucketBound returns the inclusive upper bound of bucket i.
func BucketBound(i int) float64 {
	if i <= 0 {
		return math.Ldexp(1, histMinExp)
	}
	if i >= histBuckets-1 {
		return math.Inf(1)
	}
	return math.Ldexp(1, histMinExp+i)
}

// Observe records v. NaN observations are dropped; a nil receiver is a
// no-op.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.count.Add(1)
	h.buckets[bucketIndex(v)].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if v >= math.Float64frombits(old) || h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Mean returns the mean observation (0 before the first one).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Min returns the smallest observation (0 before the first one).
func (h *Histogram) Min() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.minBits.Load())
}

// Max returns the largest observation (0 before the first one).
func (h *Histogram) Max() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.maxBits.Load())
}

// HistSnapshot is a point-in-time summary of a histogram.
//
// Buckets holds the raw (non-cumulative) per-bucket counts, indexed like
// BucketBound: Buckets[i] observations fell in (BucketBound(i-1),
// BucketBound(i)]. It is excluded from JSON output — the summary fields
// are what batch archives want — but exporters (promtext) read it to
// reconstruct the full distribution. Under concurrent writers the bucket
// total may momentarily trail Count by in-flight observations; exporters
// that need internal consistency should derive their count from the
// bucket total.
type HistSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`

	Buckets []int64 `json:"-"`
}

// Quantile estimates the q-quantile (q in [0,1]) of the distribution from
// the bucket counts, interpolating linearly within the containing bucket —
// the same estimator Prometheus's histogram_quantile applies to the
// exported buckets, so the /readyz SLO summary and a PromQL dashboard
// agree on what "p99" means. The estimate is clamped to the observed
// [Min, Max] envelope, which also resolves the two open-ended edge
// buckets (below the first bound, above the last). Returns 0 when the
// snapshot has no buckets or no observations; q outside [0,1] clamps.
func (s HistSnapshot) Quantile(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	var total int64
	for _, c := range s.Buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	clamp := func(v float64) float64 {
		if v < s.Min {
			return s.Min
		}
		if v > s.Max {
			return s.Max
		}
		return v
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		prev := float64(cum)
		cum += c
		if float64(cum) < rank {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = BucketBound(i - 1)
		}
		hi := BucketBound(i)
		if math.IsInf(hi, 1) {
			// Open-ended top bucket: no upper bound to interpolate
			// toward; the observed maximum is the best estimate.
			return s.Max
		}
		return clamp(lo + (hi-lo)*(rank-prev)/float64(c))
	}
	return s.Max
}

// Registry holds named instruments. Lookup (Counter, Gauge, Histogram)
// takes a mutex and should happen at setup points — per pipeline stage,
// not per work item; the returned instruments are then updated with pure
// atomics. A nil *Registry hands out nil instruments, whose methods are
// all no-ops, so "disabled" costs one nil check per update.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter, or nil when the
// registry is nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge, or nil when the
// registry is nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram, or nil when
// the registry is nil.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every series in a registry.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// NumSeries returns the number of distinct series in the snapshot.
func (s Snapshot) NumSeries() int {
	return len(s.Counters) + len(s.Gauges) + len(s.Histograms)
}

// Snapshot copies the current value of every series. Safe to call while
// writers are active; each series is read atomically.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range r.hists {
		buckets := make([]int64, histBuckets)
		for i := range buckets {
			buckets[i] = h.buckets[i].Load()
		}
		s.Histograms[n] = HistSnapshot{
			Count: h.Count(), Sum: h.Sum(), Mean: h.Mean(), Min: h.Min(), Max: h.Max(),
			Buckets: buckets,
		}
	}
	return s
}

// WriteText renders a sorted human-readable dump of every series.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	var names []string
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "counter %-36s %d\n", n, s.Counters[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "gauge   %-36s %g\n", n, s.Gauges[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		if _, err := fmt.Fprintf(w, "hist    %-36s count=%d sum=%.6g mean=%.6g min=%.6g max=%.6g\n",
			n, h.Count, h.Sum, h.Mean, h.Min, h.Max); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
