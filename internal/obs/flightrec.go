package obs

import (
	"sort"
	"sync"
	"time"
)

// FlightRecord is one request's post-mortem record: identity, outcome and
// the per-stage span tree, captured at completion so a latency outlier
// can be explained after the fact without re-running it.
type FlightRecord struct {
	ID         string     `json:"id"`
	Route      string     `json:"route"`
	Kernel     string     `json:"kernel,omitempty"`
	ProfileKey string     `json:"profileKey,omitempty"`
	Status     int        `json:"status"`
	Start      time.Time  `json:"start"`
	Seconds    float64    `json:"seconds"`
	Span       SpanRecord `json:"span"`
}

// FlightRecorder keeps a bounded post-hoc view of traffic: a ring of the
// N most recent requests and a separate board of the N slowest ones seen
// since startup. Both are fixed-size, so a long-lived daemon can leave
// the recorder on permanently — unlike a Tracer, it never grows.
//
// Add takes one short mutex-protected critical section (a ring store
// plus, when the request is slow enough to place, one sorted insert into
// a small array), cheap enough for the request path. All methods are
// nil-safe no-ops, so a disabled recorder costs one nil check.
type FlightRecorder struct {
	mu      sync.Mutex
	recent  []FlightRecord // ring; next is the write cursor
	next    int
	filled  bool
	slowest []FlightRecord // sorted by Seconds descending, len <= cap
}

// NewFlightRecorder returns a recorder keeping the n most recent and the
// n slowest requests. n <= 0 returns nil: a disabled recorder.
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		return nil
	}
	return &FlightRecorder{
		recent:  make([]FlightRecord, n),
		slowest: make([]FlightRecord, 0, n),
	}
}

// Add records one completed request. No-op on a nil receiver.
func (f *FlightRecorder) Add(r FlightRecord) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.recent[f.next] = r
	f.next++
	if f.next == len(f.recent) {
		f.next = 0
		f.filled = true
	}
	if len(f.slowest) == cap(f.slowest) && r.Seconds <= f.slowest[len(f.slowest)-1].Seconds {
		return
	}
	i := sort.Search(len(f.slowest), func(i int) bool { return f.slowest[i].Seconds < r.Seconds })
	if len(f.slowest) < cap(f.slowest) {
		f.slowest = append(f.slowest, FlightRecord{})
	}
	copy(f.slowest[i+1:], f.slowest[i:])
	f.slowest[i] = r
}

// FlightSnapshot is a point-in-time copy of the recorder's two boards.
type FlightSnapshot struct {
	Capacity int            `json:"capacity"`
	Recent   []FlightRecord `json:"recent"`  // newest first
	Slowest  []FlightRecord `json:"slowest"` // slowest first
}

// Snapshot copies both boards: Recent newest-first, Slowest ordered by
// descending duration. Returns a zero snapshot on a nil receiver.
func (f *FlightRecorder) Snapshot() FlightSnapshot {
	if f == nil {
		return FlightSnapshot{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	s := FlightSnapshot{Capacity: len(f.recent)}
	n := f.next
	if f.filled {
		n = len(f.recent)
	}
	s.Recent = make([]FlightRecord, 0, n)
	for i := 1; i <= n; i++ {
		// Walk backward from the cursor: newest first.
		s.Recent = append(s.Recent, f.recent[(f.next-i+len(f.recent))%len(f.recent)])
	}
	s.Slowest = append([]FlightRecord(nil), f.slowest...)
	return s
}

// Find returns the most recent record with the given request ID, checking
// the recent ring first and the slowest board second. The second result
// reports whether one was found; it is false on a nil receiver.
func (f *FlightRecorder) Find(id string) (FlightRecord, bool) {
	if f == nil {
		return FlightRecord{}, false
	}
	s := f.Snapshot()
	for _, r := range s.Recent {
		if r.ID == id {
			return r, true
		}
	}
	for _, r := range s.Slowest {
		if r.ID == id {
			return r, true
		}
	}
	return FlightRecord{}, false
}
