package obs

import "time"

// Observer bundles a metrics registry and a tracer into one handle the
// pipeline threads through its layers. A nil *Observer (or nil fields)
// disables the corresponding half at zero cost: every method is a
// nil-safe no-op.
//
// Spans nest through derived observers: a stage opens a span with
// StartSpan, then passes o.WithSpan(span) downward so the callee's spans
// become children. The derivation allocates one small struct and happens
// only when observability is enabled.
type Observer struct {
	Metrics *Registry
	Tracer  *Tracer

	parent *Span // non-nil: StartSpan creates children of this span
}

// NewObserver bundles m and t. Returns nil when both are nil, so a fully
// disabled observer is a nil pointer and costs nothing downstream.
func NewObserver(m *Registry, t *Tracer) *Observer {
	if m == nil && t == nil {
		return nil
	}
	return &Observer{Metrics: m, Tracer: t}
}

// StartSpan opens a span: a child of the observer's parent span when one
// is set (see WithSpan), a top-level tracer span otherwise. Returns nil
// when the observer or tracing is disabled.
func (o *Observer) StartSpan(name string) *Span {
	if o == nil {
		return nil
	}
	if o.parent != nil {
		return o.parent.Child(name)
	}
	return o.Tracer.StartSpan(name)
}

// WithSpan returns a derived observer whose StartSpan nests under s.
// With a nil observer or span it returns the receiver unchanged.
func (o *Observer) WithSpan(s *Span) *Observer {
	if o == nil || s == nil {
		return o
	}
	d := *o
	d.parent = s
	return &d
}

// Counter resolves a counter from the metrics registry (nil-safe).
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.Metrics.Counter(name)
}

// Gauge resolves a gauge from the metrics registry (nil-safe).
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Metrics.Gauge(name)
}

// Histogram resolves a histogram from the metrics registry (nil-safe).
func (o *Observer) Histogram(name string) *Histogram {
	if o == nil {
		return nil
	}
	return o.Metrics.Histogram(name)
}

// ObserveSince records the seconds elapsed since start into the named
// histogram. No-op when the observer or metrics are disabled.
func (o *Observer) ObserveSince(name string, start time.Time) {
	if o == nil || o.Metrics == nil {
		return
	}
	o.Metrics.Histogram(name).Observe(time.Since(start).Seconds())
}
