package runtimecollector

import (
	"runtime"
	"sync"
	"testing"

	"gpumech/internal/obs"
)

func TestCollectRefreshesGauges(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(reg)
	// The runtime flushes per-P allocation statistics lazily; without a
	// GC the cumulative alloc gauges can legitimately read 0 this early
	// in the process. Force the flush so the assertions are
	// deterministic.
	runtime.GC()
	c.Collect()
	s := reg.Snapshot()
	if g := s.Gauges["runtime.goroutines"]; g < 1 {
		t.Fatalf("runtime.goroutines = %g, want >= 1", g)
	}
	if g := s.Gauges["runtime.memory.total.bytes"]; g <= 0 {
		t.Fatalf("runtime.memory.total.bytes = %g, want > 0", g)
	}
	if g := s.Gauges["runtime.heap.allocs.bytes"]; g <= 0 {
		t.Fatalf("runtime.heap.allocs.bytes = %g, want > 0", g)
	}
	for _, gs := range gaugeSamples {
		if _, ok := s.Gauges[gs.gauge]; !ok {
			t.Fatalf("gauge %q missing from registry", gs.gauge)
		}
	}
}

func TestCollectObservesGCPauses(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(reg)
	c.Collect() // establish the pause baseline
	before := reg.Histogram(pauseHistName).Count()
	for i := 0; i < 4; i++ {
		runtime.GC()
	}
	c.Collect()
	after := reg.Histogram(pauseHistName).Count()
	if after <= before {
		t.Fatalf("pause histogram count %d -> %d, want an increase after 4 GCs", before, after)
	}
	if min := reg.Histogram(pauseHistName).Min(); min < 0 {
		t.Fatalf("negative pause observation %g", min)
	}
}

func TestCollectConcurrent(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(reg)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				c.Collect()
			}
		}()
	}
	wg.Wait()
	if reg.Snapshot().Gauges["runtime.goroutines"] < 1 {
		t.Fatal("goroutine gauge unset after concurrent collects")
	}
}

func TestNilSafety(t *testing.T) {
	if New(nil) != nil {
		t.Fatal("New(nil) must return nil")
	}
	var c *Collector
	c.Collect() // must not panic
}
