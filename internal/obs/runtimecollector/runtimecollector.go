// Package runtimecollector mirrors the Go runtime's own telemetry
// (runtime/metrics) into an obs.Registry so a long-lived gpumech process
// exposes scheduler, heap and GC health next to its model metrics on the
// same /metrics endpoint.
//
// A Collector is pull-based: nothing runs in the background; Collect
// re-samples the runtime and updates the registry, and the serving layer
// calls it once per scrape (promtext.Handler's refresh hook). That keeps
// the daemon's idle cost at zero and means every scrape sees values read
// at scrape time.
package runtimecollector

import (
	"math"
	"runtime/metrics"
	"sync"

	"gpumech/internal/obs"
)

// gaugeSamples maps runtime/metrics sample names onto obs gauge names.
// Cumulative runtime counters (alloc bytes, GC cycles) are exposed as
// gauges too: obs counters are write-side instruments and these are
// read-side copies of values the runtime already accumulates.
var gaugeSamples = []struct {
	runtime string
	gauge   string
}{
	{"/sched/goroutines:goroutines", "runtime.goroutines"},
	{"/memory/classes/heap/objects:bytes", "runtime.heap.objects.bytes"},
	{"/memory/classes/total:bytes", "runtime.memory.total.bytes"},
	{"/gc/heap/allocs:bytes", "runtime.heap.allocs.bytes"},
	{"/gc/heap/goal:bytes", "runtime.gc.heap.goal.bytes"},
	{"/gc/cycles/total:gc-cycles", "runtime.gc.cycles"},
}

// pauseSample is the runtime's cumulative GC stop-the-world pause
// distribution; Collect replays its per-bucket increments into an obs
// histogram.
const pauseSample = "/gc/pauses:seconds"

// pauseHistName is the obs histogram receiving GC pause observations.
const pauseHistName = "runtime.gc.pause.seconds"

// Collector resamples runtime/metrics into a registry. Create with New;
// Collect is safe for concurrent use (scrapes serialize on an internal
// mutex). A nil *Collector's Collect is a no-op.
type Collector struct {
	mu      sync.Mutex
	samples []metrics.Sample
	gauges  []*obs.Gauge // parallel to samples[:len(gauges)]
	pause   *obs.Histogram
	prev    []uint64 // previous cumulative GC-pause bucket counts
}

// New builds a collector that writes into reg. The instruments are
// resolved once here so Collect never touches the registry's mutex.
// Returns nil when reg is nil.
func New(reg *obs.Registry) *Collector {
	if reg == nil {
		return nil
	}
	c := &Collector{}
	for _, gs := range gaugeSamples {
		c.samples = append(c.samples, metrics.Sample{Name: gs.runtime})
		c.gauges = append(c.gauges, reg.Gauge(gs.gauge))
	}
	c.samples = append(c.samples, metrics.Sample{Name: pauseSample})
	c.pause = reg.Histogram(pauseHistName)
	return c
}

// Collect resamples the runtime and refreshes every mirrored instrument:
// gauges are overwritten with the current values and new GC pauses since
// the previous Collect are replayed into the pause histogram.
func (c *Collector) Collect() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	metrics.Read(c.samples)
	for i, g := range c.gauges {
		if v, ok := sampleValue(c.samples[i].Value); ok {
			g.Set(v)
		}
	}
	if h := c.samples[len(c.samples)-1].Value; h.Kind() == metrics.KindFloat64Histogram {
		c.replayPauses(h.Float64Histogram())
	}
}

// replayPauses observes the increment of each cumulative runtime bucket
// since the last call, attributing it to the bucket's midpoint (clamped
// to the finite edge for the unbounded first/last buckets). The runtime's
// bucket layout is fixed for a process lifetime; if it ever changes the
// baseline resets rather than observing a bogus delta.
func (c *Collector) replayPauses(h *metrics.Float64Histogram) {
	if len(c.prev) != len(h.Counts) {
		c.prev = make([]uint64, len(h.Counts))
		copy(c.prev, h.Counts)
		return
	}
	for i, n := range h.Counts {
		delta := n - c.prev[i]
		c.prev[i] = n
		if delta == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		v := (lo + hi) / 2
		if math.IsInf(lo, -1) {
			v = hi
		} else if math.IsInf(hi, 1) {
			v = lo
		}
		for ; delta > 0; delta-- {
			c.pause.Observe(v)
		}
	}
}

// sampleValue converts a runtime/metrics value to float64. Unknown kinds
// (KindBad on older runtimes, or future additions) report ok=false and
// leave the gauge untouched.
func sampleValue(v metrics.Value) (float64, bool) {
	switch v.Kind() {
	case metrics.KindUint64:
		return float64(v.Uint64()), true
	case metrics.KindFloat64:
		return v.Float64(), true
	}
	return 0, false
}
