package promtext

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Lint validates data against the exposition-format rules this package
// promises, line by line:
//
//   - every line is a # HELP comment, a # TYPE comment, a sample, or
//     blank;
//   - metric and family names match [a-zA-Z_:][a-zA-Z0-9_:]*;
//   - each family has exactly one # TYPE line (and at most one # HELP),
//     appearing before its samples;
//   - every sample value parses as a float;
//   - for each histogram family: every _bucket carries a parseable `le`
//     label, cumulative bucket values are monotonically non-decreasing in
//     increasing `le` order, the family has an le="+Inf" bucket, and that
//     bucket equals the family's _count sample.
//
// It exists so the conformance rules live next to the writer and both the
// package tests and the serve handler tests check the same contract.
func Lint(data []byte) error {
	type hist struct {
		les    []float64
		counts []float64
		count  float64
		hasCnt bool
		hasSum bool
	}
	typed := map[string]string{} // family -> declared type
	helped := map[string]bool{}  // family -> saw # HELP
	sampled := map[string]bool{} // family (or bare metric) with samples
	hists := map[string]*hist{}  // histogram family accumulation

	lines := strings.Split(string(data), "\n")
	for ln, line := range lines {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			name := fields[2]
			if !validName(name) {
				return fmt.Errorf("line %d: invalid family name %q", lineNo, name)
			}
			switch fields[1] {
			case "TYPE":
				if len(fields) != 4 {
					return fmt.Errorf("line %d: TYPE without a type", lineNo)
				}
				if _, dup := typed[name]; dup {
					return fmt.Errorf("line %d: second # TYPE for family %q", lineNo, name)
				}
				if sampled[name] {
					return fmt.Errorf("line %d: # TYPE for %q after its samples", lineNo, name)
				}
				typed[name] = fields[3]
			case "HELP":
				if helped[name] {
					return fmt.Errorf("line %d: second # HELP for family %q", lineNo, name)
				}
				helped[name] = true
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		if !validName(name) {
			return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
		}
		fam, series := histFamily(name, typed)
		sampled[fam] = true
		if typed[fam] == "" {
			return fmt.Errorf("line %d: sample %q without a # TYPE", lineNo, name)
		}
		if typed[fam] != "histogram" {
			continue
		}
		h := hists[fam]
		if h == nil {
			h = &hist{}
			hists[fam] = h
		}
		switch series {
		case "bucket":
			le, ok := labels["le"]
			if !ok {
				return fmt.Errorf("line %d: _bucket sample without le label", lineNo)
			}
			bound, err := parseLE(le)
			if err != nil {
				return fmt.Errorf("line %d: bad le %q: %v", lineNo, le, err)
			}
			h.les = append(h.les, bound)
			h.counts = append(h.counts, value)
		case "sum":
			h.hasSum = true
		case "count":
			h.count = value
			h.hasCnt = true
		default:
			return fmt.Errorf("line %d: unexpected histogram series %q", lineNo, name)
		}
	}

	var fams []string
	for f, typ := range typed {
		if typ == "histogram" {
			fams = append(fams, f)
		}
	}
	sort.Strings(fams)
	for _, f := range fams {
		h := hists[f]
		if h == nil {
			return fmt.Errorf("histogram family %q has no samples", f)
		}
		if !h.hasSum || !h.hasCnt {
			return fmt.Errorf("histogram family %q missing _sum or _count", f)
		}
		inf := math.NaN()
		for i := range h.les {
			if i > 0 {
				if h.les[i] <= h.les[i-1] {
					return fmt.Errorf("histogram %q: le bounds not increasing (%g after %g)",
						f, h.les[i], h.les[i-1])
				}
				if h.counts[i] < h.counts[i-1] {
					return fmt.Errorf("histogram %q: bucket values decrease (%g after %g at le=%g)",
						f, h.counts[i], h.counts[i-1], h.les[i])
				}
			}
			if math.IsInf(h.les[i], 1) {
				inf = h.counts[i]
			}
		}
		if math.IsNaN(inf) {
			return fmt.Errorf("histogram %q has no le=\"+Inf\" bucket", f)
		}
		if inf != h.count { //det:ok counts are integers; the Prometheus invariant is exact
			return fmt.Errorf("histogram %q: +Inf bucket %g != _count %g", f, inf, h.count)
		}
	}
	return nil
}

// histFamily strips a histogram series suffix from a metric name when the
// resulting family is a declared histogram, returning the family and the
// series kind ("bucket", "sum", "count", or "" for plain samples).
func histFamily(name string, typed map[string]string) (fam, series string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && typed[base] == "histogram" {
			return base, suf[1:]
		}
	}
	return name, ""
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// parseSample splits `name{labels} value` (labels optional) into parts.
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.IndexByte(rest, '}')
		if j < i {
			return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
		}
		labels = map[string]string{}
		for _, pair := range strings.Split(rest[i+1:j], ",") {
			if pair == "" {
				continue
			}
			k, qv, ok := strings.Cut(pair, "=")
			if !ok {
				return "", nil, 0, fmt.Errorf("malformed label %q", pair)
			}
			v, err := strconv.Unquote(qv)
			if err != nil {
				return "", nil, 0, fmt.Errorf("unquoting label %q: %v", pair, err)
			}
			labels[k] = v
		}
		rest = strings.TrimPrefix(rest[j+1:], " ")
	} else {
		var ok bool
		name, rest, ok = strings.Cut(rest, " ")
		if !ok {
			return "", nil, 0, fmt.Errorf("sample %q has no value", line)
		}
	}
	v, perr := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if perr != nil {
		return "", nil, 0, fmt.Errorf("sample value in %q: %v", line, perr)
	}
	return name, labels, v, nil
}

func parseLE(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}
