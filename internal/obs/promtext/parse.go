package promtext

import (
	"fmt"
	"strings"
)

// Sample is one parsed exposition-format sample line.
type Sample struct {
	Name   string
	Labels map[string]string // nil when the line carries no label set
	Value  float64
}

// ParseSamples parses exposition-format text into its sample lines,
// skipping comments and blanks. It is the read-side complement of Write:
// gpumech-bench scrapes /metrics before and after a load phase and diffs
// the histogram _sum/_count samples to attribute latency to pipeline
// stages. Parsing stops at the first malformed line with a positioned
// error.
func ParseSamples(data []byte) ([]Sample, error) {
	var out []Sample
	for ln, line := range strings.Split(string(data), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", ln+1, err)
		}
		out = append(out, Sample{Name: name, Labels: labels, Value: value})
	}
	return out, nil
}
