// Package promtext renders an obs.Registry snapshot in the Prometheus
// text exposition format, version 0.0.4 — the format every Prometheus
// server scrapes — so a long-lived gpumech process can expose the same
// instruments the batch pipeline dumps on exit.
//
// Mapping from obs instruments to Prometheus families:
//
//   - every family name is the obs series name with each character
//     outside [a-zA-Z0-9_:] replaced by '_', prefixed with "gpumech_"
//     (which also guarantees a legal first character);
//   - counters additionally get the conventional "_total" suffix (unless
//     the name already ends in it) and render as TYPE counter;
//   - gauges render as TYPE gauge;
//   - histograms render as TYPE histogram with the full cumulative
//     `_bucket{le="..."}` series over the obs bucket bounds
//     (obs.BucketBound), a closing `le="+Inf"` bucket, and `_sum` and
//     `_count` samples. `_count` and the +Inf bucket are both derived
//     from the bucket total, so they agree even while writers race the
//     scrape.
//
// The package is stdlib-only and pure: Write is a function of a
// Snapshot, which makes conformance testable without a live server.
package promtext

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"gpumech/internal/obs"
)

// ContentType is the Content-Type header value for exposition format
// version 0.0.4.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// namePrefix namespaces every exported family.
const namePrefix = "gpumech_"

// sanitizeName maps an obs series name onto the Prometheus metric-name
// charset [a-zA-Z_:][a-zA-Z0-9_:]*: illegal characters become '_' and the
// gpumech_ prefix supplies a legal first character.
func sanitizeName(name string) string {
	var b strings.Builder
	b.WriteString(namePrefix)
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// counterName is sanitizeName plus the conventional _total suffix.
func counterName(name string) string {
	n := sanitizeName(name)
	if !strings.HasSuffix(n, "_total") {
		n += "_total"
	}
	return n
}

// escapeHelp escapes a HELP text per the exposition format: backslashes
// and line feeds must be escaped; everything else passes through.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a sample value. Prometheus accepts Go's shortest
// round-trip representation; infinities spell +Inf/-Inf.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Write renders s in exposition format v0.0.4. Families are emitted in
// sorted order (counters, then gauges, then histograms), each preceded by
// exactly one # HELP and one # TYPE line, so the output is deterministic
// for a fixed snapshot.
func Write(w io.Writer, s obs.Snapshot) error {
	bw := bufio.NewWriter(w)

	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fam := counterName(n)
		fmt.Fprintf(bw, "# HELP %s obs counter %s\n", fam, escapeHelp(strconv.Quote(n)))
		fmt.Fprintf(bw, "# TYPE %s counter\n", fam)
		fmt.Fprintf(bw, "%s %d\n", fam, s.Counters[n])
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fam := sanitizeName(n)
		fmt.Fprintf(bw, "# HELP %s obs gauge %s\n", fam, escapeHelp(strconv.Quote(n)))
		fmt.Fprintf(bw, "# TYPE %s gauge\n", fam)
		fmt.Fprintf(bw, "%s %s\n", fam, formatFloat(s.Gauges[n]))
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		fam := sanitizeName(n)
		fmt.Fprintf(bw, "# HELP %s obs histogram %s\n", fam, escapeHelp(strconv.Quote(n)))
		fmt.Fprintf(bw, "# TYPE %s histogram\n", fam)
		var cum int64
		for i, c := range h.Buckets {
			cum += c
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", fam, formatFloat(obs.BucketBound(i)), cum)
		}
		// The obs layout makes the last bucket unbounded, so the final
		// cumulative value above already carries le="+Inf"; _count repeats
		// it so the two agree even mid-scrape.
		fmt.Fprintf(bw, "%s_sum %s\n", fam, formatFloat(h.Sum))
		fmt.Fprintf(bw, "%s_count %d\n", fam, cum)
	}

	return bw.Flush()
}

// Handler serves r's snapshot at scrape time, invoking each refresh
// function first (e.g. a runtimecollector.Collector's Collect) so
// point-in-time gauges are current. A nil registry serves an empty but
// valid exposition.
func Handler(r *obs.Registry, refresh ...func()) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		for _, f := range refresh {
			f()
		}
		w.Header().Set("Content-Type", ContentType)
		if err := Write(w, r.Snapshot()); err != nil {
			// Headers are already out; nothing useful left to do but log
			// via the server's ErrorLog. Abort the body.
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
