package promtext

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"gpumech/internal/obs"
)

func sampleRegistry() *obs.Registry {
	r := obs.NewRegistry()
	r.Counter("trace.kernels").Add(3)
	r.Counter("pool.items_total").Add(7) // already suffixed: no double _total
	r.Gauge("pool.queue.depth").Set(4.5)
	h := r.Histogram("stage.trace.seconds")
	for _, v := range []float64{1e-9, 0.002, 0.002, 0.4, 12, 1e11} {
		h.Observe(v)
	}
	return r
}

func TestWriteConformance(t *testing.T) {
	var b strings.Builder
	if err := Write(&b, sampleRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if err := Lint([]byte(out)); err != nil {
		t.Fatalf("lint: %v\noutput:\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE gpumech_trace_kernels_total counter",
		"gpumech_trace_kernels_total 3",
		"# TYPE gpumech_pool_items_total counter",
		"gpumech_pool_items_total 7",
		"# TYPE gpumech_pool_queue_depth gauge",
		"gpumech_pool_queue_depth 4.5",
		"# TYPE gpumech_stage_trace_seconds histogram",
		`gpumech_stage_trace_seconds_bucket{le="+Inf"} 6`,
		"gpumech_stage_trace_seconds_count 6",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteHistogramCumulative(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("lat")
	h.Observe(0.001)
	h.Observe(1.0)
	var b strings.Builder
	if err := Write(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	// Exactly NumBuckets bucket lines, ending in the +Inf bucket, with
	// per-line cumulative values that never decrease.
	var bucketLines int
	prev := -1.0
	for _, line := range strings.Split(b.String(), "\n") {
		if !strings.HasPrefix(line, "gpumech_lat_bucket{") {
			continue
		}
		bucketLines++
		name, labels, v, err := parseSample(line)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		if name != "gpumech_lat_bucket" {
			t.Fatalf("unexpected sample name %q", name)
		}
		if _, err := parseLE(labels["le"]); err != nil {
			t.Fatalf("bad le on %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("cumulative bucket decreased at %q", line)
		}
		prev = v
	}
	if bucketLines != obs.NumBuckets {
		t.Fatalf("got %d bucket lines, want %d", bucketLines, obs.NumBuckets)
	}
	if prev != 2 {
		t.Fatalf("final cumulative bucket %g, want 2", prev)
	}
}

func TestSanitizeAndNames(t *testing.T) {
	if got := sanitizeName("stage.trace/秒"); got != "gpumech_stage_trace__" {
		t.Fatalf("sanitizeName: got %q", got)
	}
	if got := counterName("x.y"); got != "gpumech_x_y_total" {
		t.Fatalf("counterName: got %q", got)
	}
	if got := counterName("x_total"); got != "gpumech_x_total" {
		t.Fatalf("counterName suffix: got %q", got)
	}
	if !validName("gpumech_a:b_1") || validName("1abc") || validName("a.b") || validName("") {
		t.Fatal("validName misclassifies")
	}
}

func TestFormatFloat(t *testing.T) {
	for in, want := range map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		4.5:          "4.5",
	} {
		if got := formatFloat(in); got != want {
			t.Fatalf("formatFloat(%g) = %q, want %q", in, got, want)
		}
	}
	if formatFloat(math.NaN()) != "NaN" {
		t.Fatal("formatFloat(NaN)")
	}
}

func TestLintRejections(t *testing.T) {
	cases := map[string]string{
		"invalid name":       "# TYPE bad.name counter\nbad.name 1\n",
		"duplicate TYPE":     "# TYPE a counter\n# TYPE a counter\na 1\n",
		"untyped sample":     "a 1\n",
		"decreasing buckets": "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
		"no +Inf bucket":     "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_sum 1\nh_count 2\n",
		"count mismatch":     "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
		"bad value":          "# TYPE a counter\na one\n",
	}
	for name, in := range cases {
		if err := Lint([]byte(in)); err == nil {
			t.Errorf("%s: Lint accepted invalid input", name)
		}
	}
	if err := Lint([]byte("# TYPE a counter\n# HELP a help text\na 1\n")); err != nil {
		t.Errorf("Lint rejected valid input: %v", err)
	}
}

func TestHandler(t *testing.T) {
	r := sampleRegistry()
	refreshed := false
	h := Handler(r, func() { refreshed = true })
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !refreshed {
		t.Fatal("refresh function not invoked on scrape")
	}
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Fatalf("Content-Type %q, want %q", ct, ContentType)
	}
	if err := Lint(rec.Body.Bytes()); err != nil {
		t.Fatalf("handler output fails lint: %v", err)
	}
}

func TestHandlerNilRegistry(t *testing.T) {
	rec := httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if err := Lint(rec.Body.Bytes()); err != nil {
		t.Fatalf("empty exposition fails lint: %v", err)
	}
}
