package gpumech

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"gpumech/internal/accuracy"
	"gpumech/internal/kernels"
)

// envelopeEntry is one policy's pinned accuracy envelope: the aggregate
// error statistics of the model against the timing oracle over the
// 40-kernel paper set at the paper-methodology grid scale.
type envelopeEntry struct {
	Policy       string  `json:"policy"`
	N            int     `json:"n"`
	MeanRelErr   float64 `json:"meanRelErr"`
	MedianRelErr float64 `json:"medianRelErr"`
	MaxRelErr    float64 `json:"maxRelErr"`
	FracBelow10  float64 `json:"fracBelow10"`
	FracBelow30  float64 `json:"fracBelow30"`
}

func envelopePath() string {
	return filepath.Join("testdata", "accuracy", "envelope.json")
}

// TestAccuracyEnvelope pins the model's accuracy envelope. Any change to
// the model, the timing simulator, the cache hierarchy or the kernels
// that moves the aggregate error shows up here as a diff against
// testdata/accuracy/envelope.json; deliberate changes re-bless with
// -update. The run is deterministic, so the tolerance only absorbs
// floating-point noise from compiler or platform differences.
func TestAccuracyEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("full paper-set differential sweep is not a -short test")
	}
	if raceEnabled {
		t.Skip("full paper-set sweep is minutes under the race detector; covered by the non-race job")
	}
	rep, err := accuracy.Run(accuracy.Options{
		Axes: accuracy.BaselineAxis(),
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantN := len(kernels.PaperNames())
	if rep.EvaluatedPoints != wantN*2 {
		t.Fatalf("evaluated %d points, want %d (40 kernels x 2 policies)", rep.EvaluatedPoints, wantN*2)
	}

	got := make(map[string]envelopeEntry, len(rep.Summaries))
	for _, s := range rep.Summaries {
		if s.N != wantN {
			t.Fatalf("policy %s: N=%d, want %d", s.Policy, s.N, wantN)
		}
		got[s.Policy] = envelopeEntry{
			Policy:       s.Policy,
			N:            s.N,
			MeanRelErr:   s.MeanRelErr,
			MedianRelErr: s.MedianRelErr,
			MaxRelErr:    s.MaxRelErr,
			FracBelow10:  s.FracBelow10,
			FracBelow30:  s.FracBelow30,
		}
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(envelopePath()), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(envelopePath(), append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", envelopePath())
		return
	}

	data, err := os.ReadFile(envelopePath())
	if err != nil {
		t.Fatalf("missing envelope file (generate with: go test -run TestAccuracyEnvelope -update): %v", err)
	}
	var want map[string]envelopeEntry
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("envelope file pins %d policies, run produced %d", len(want), len(got))
	}
	const tol = 1e-9
	for pol, w := range want {
		g, ok := got[pol]
		if !ok {
			t.Fatalf("policy %s pinned but not produced", pol)
		}
		if g.N != w.N {
			t.Errorf("%s: N=%d, want %d", pol, g.N, w.N)
		}
		check := func(field string, gv, wv float64) {
			if !relClose(gv, wv, tol) {
				t.Errorf("%s: %s=%v, want %v (re-bless with -update if deliberate)", pol, field, gv, wv)
			}
		}
		check("meanRelErr", g.MeanRelErr, w.MeanRelErr)
		check("medianRelErr", g.MedianRelErr, w.MedianRelErr)
		check("maxRelErr", g.MaxRelErr, w.MaxRelErr)
		check("fracBelow10", g.FracBelow10, w.FracBelow10)
		check("fracBelow30", g.FracBelow30, w.FracBelow30)
	}
}
