// Benchmarks regenerating every figure and table of the paper's
// evaluation (DESIGN.md section 4 maps each to its experiment). Each
// BenchmarkFigureNN runs the corresponding experiment and reports the
// headline numbers as custom metrics (mean relative error per model, in
// percent), so `go test -bench=.` both regenerates and summarizes the
// evaluation.
//
// By default the benchmarks run in quick mode (a dozen kernels, trimmed
// sweeps) so the suite completes in minutes on one core. Set
// GPUMECH_BENCH_FULL=1 to use all 40 kernels and full sweeps — that is
// the configuration EXPERIMENTS.md records.
package gpumech

import (
	"os"
	"runtime"
	"strconv"
	"testing"

	"gpumech/internal/cache"
	"gpumech/internal/config"
	"gpumech/internal/core/model"
	"gpumech/internal/experiments"
	"gpumech/internal/kernels"
	"gpumech/internal/timing"
	"gpumech/internal/trace"
)

func benchOptions() experiments.Options {
	full := os.Getenv("GPUMECH_BENCH_FULL") == "1"
	return experiments.Options{Quick: !full}
}

// parsePct extracts a numeric percentage cell like "13.2%".
func parsePct(cell string) float64 {
	if len(cell) == 0 || cell[len(cell)-1] != '%' {
		return 0
	}
	v, err := strconv.ParseFloat(cell[:len(cell)-1], 64)
	if err != nil {
		return 0
	}
	return v
}

// benchFigure runs one figure experiment per iteration (cached after the
// first) and returns the final figure for metric extraction.
func benchFigure(b *testing.B, id string) *experiments.Evaluator {
	b.Helper()
	e := experiments.NewEvaluator(benchOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run([]string{id}); err != nil {
			b.Fatal(err)
		}
	}
	return e
}

// BenchmarkFigure4_SRADComponentErrors regenerates Figure 4: the SRAD
// error as model components are added.
func BenchmarkFigure4_SRADComponentErrors(b *testing.B) {
	e := benchFigure(b, "fig04")
	fig, err := e.Figure4()
	if err != nil {
		b.Fatal(err)
	}
	for _, row := range fig.Rows {
		b.ReportMetric(parsePct(row[3]), row[0]+"-%err")
	}
}

// BenchmarkFigure7_RepresentativeWarpSelection regenerates Figure 7.
func BenchmarkFigure7_RepresentativeWarpSelection(b *testing.B) {
	e := benchFigure(b, "fig07")
	fig, err := e.Figure7()
	if err != nil {
		b.Fatal(err)
	}
	last := fig.Rows[len(fig.Rows)-1] // AVERAGE row
	b.ReportMetric(parsePct(last[1]), "clustering-%err")
	b.ReportMetric(parsePct(last[2]), "max-%err")
	b.ReportMetric(parsePct(last[3]), "min-%err")
}

func benchModelComparison(b *testing.B, id string) {
	e := benchFigure(b, id)
	figs, err := e.Run([]string{id})
	if err != nil {
		b.Fatal(err)
	}
	fig := figs[0]
	avg := fig.Rows[len(fig.Rows)-2] // AVERAGE row
	names := experiments.ModelNames()
	for i, n := range names {
		b.ReportMetric(parsePct(avg[i+1]), n+"-%err")
	}
}

// BenchmarkFigure11_ModelComparisonRR regenerates Figure 11 (the paper's
// headline: GPUMech averages 13.2% error under round-robin).
func BenchmarkFigure11_ModelComparisonRR(b *testing.B) { benchModelComparison(b, "fig11") }

// BenchmarkFigure12_ModelComparisonGTO regenerates Figure 12 (14.0% under
// greedy-then-oldest in the paper).
func BenchmarkFigure12_ModelComparisonGTO(b *testing.B) { benchModelComparison(b, "fig12") }

func benchSweep(b *testing.B, id string) {
	e := benchFigure(b, id)
	figs, err := e.Run([]string{id})
	if err != nil {
		b.Fatal(err)
	}
	fig := figs[0]
	// Report the full model's error at the first and last sweep points.
	first, last := fig.Rows[0], fig.Rows[len(fig.Rows)-1]
	b.ReportMetric(parsePct(first[5]), "full-%err@"+first[0])
	b.ReportMetric(parsePct(last[5]), "full-%err@"+last[0])
	b.ReportMetric(parsePct(last[1]), "naive-%err@"+last[0])
}

// BenchmarkFigure13_WarpSweep regenerates Figure 13 (error vs warps/core).
func BenchmarkFigure13_WarpSweep(b *testing.B) { benchSweep(b, "fig13") }

// BenchmarkFigure14_MSHRSweep regenerates Figure 14 (error vs MSHRs).
func BenchmarkFigure14_MSHRSweep(b *testing.B) { benchSweep(b, "fig14") }

// BenchmarkFigure15_BandwidthSweep regenerates Figure 15 (error vs GB/s).
func BenchmarkFigure15_BandwidthSweep(b *testing.B) { benchSweep(b, "fig15") }

// BenchmarkFigure16_CPIStackScaling regenerates Figure 16 (CPI stacks vs
// occupancy for the three Section VII-A kernels).
func BenchmarkFigure16_CPIStackScaling(b *testing.B) {
	e := benchFigure(b, "fig16")
	fig, err := e.Figure16()
	if err != nil {
		b.Fatal(err)
	}
	// Metric: the predicted-vs-oracle normalized CPI of the last row
	// (kmeans at the highest occupancy) — the scaling-trend check.
	last := fig.Rows[len(fig.Rows)-1]
	m, _ := strconv.ParseFloat(last[len(last)-2], 64)
	o, _ := strconv.ParseFloat(last[len(last)-1], 64)
	b.ReportMetric(m, "norm-model")
	b.ReportMetric(o, "norm-oracle")
}

// BenchmarkSpeedup_ModelVsTiming regenerates the Section VI-D study.
func BenchmarkSpeedup_ModelVsTiming(b *testing.B) {
	e := benchFigure(b, "speedup")
	fig, err := e.Speedup()
	if err != nil {
		b.Fatal(err)
	}
	last := fig.Rows[len(fig.Rows)-1][6] // GEOMEAN like "12.3x"
	v, _ := strconv.ParseFloat(last[:len(last)-1], 64)
	b.ReportMetric(v, "speedup-x")
}

// ---- component micro-benchmarks -------------------------------------------

// benchKernelTrace traces a kernel once for the component benches.
func benchKernelTrace(b *testing.B, name string, blocks int) *trace.Kernel {
	b.Helper()
	info, err := kernels.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := info.Trace(kernels.Scale{Blocks: blocks, Seed: 1}, 128)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkEmulator measures functional-emulation throughput
// (instructions per second appear as insts/op via b.ReportMetric).
func BenchmarkEmulator(b *testing.B) {
	info, err := kernels.Get("rodinia_srad1")
	if err != nil {
		b.Fatal(err)
	}
	var insts int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := info.Trace(kernels.Scale{Blocks: 64, Seed: 1}, 128)
		if err != nil {
			b.Fatal(err)
		}
		insts = tr.TotalInsts()
	}
	b.ReportMetric(float64(insts), "insts")
}

// BenchmarkCacheSimulator measures the functional cache simulation.
func BenchmarkCacheSimulator(b *testing.B) {
	tr := benchKernelTrace(b, "rodinia_cfd_compute_flux", 128)
	cfg := config.Baseline()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cache.Simulate(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIntervalAlgorithm measures the interval algorithm over every
// warp of a kernel (the model's per-input profiling cost).
func BenchmarkIntervalAlgorithm(b *testing.B) {
	tr := benchKernelTrace(b, "rodinia_cfd_compute_flux", 128)
	cfg := config.Baseline()
	prof, err := cache.Simulate(tr, cfg)
	if err != nil {
		b.Fatal(err)
	}
	tbl := model.BuildPCTable(tr.Prog, cfg, prof)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.BuildWarpProfiles(tr, cfg, tbl); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelFull measures one complete GPUMech evaluation (interval
// profiles + clustering + multi-warp + contention models).
func BenchmarkModelFull(b *testing.B) {
	tr := benchKernelTrace(b, "rodinia_cfd_compute_flux", 128)
	cfg := config.Baseline()
	prof, err := cache.Simulate(tr, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Run(model.Inputs{Kernel: tr, Cfg: cfg, Profile: prof, Policy: config.RR}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTimingSimulator measures the detailed oracle on the same
// kernel, for direct comparison with the model benches above.
func BenchmarkTimingSimulator(b *testing.B) {
	tr := benchKernelTrace(b, "rodinia_cfd_compute_flux", 128)
	cfg := config.Baseline()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := timing.Simulate(tr, cfg, timing.RR); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- parallel-vs-sequential benchmarks -------------------------------------

// benchBuildWarpProfiles measures the interval-profiling stage at a fixed
// worker count. The sequential/parallel pair quantifies the pool's
// speedup on the model's dominant per-input cost.
func benchBuildWarpProfiles(b *testing.B, workers int) {
	tr := benchKernelTrace(b, "rodinia_cfd_compute_flux", 128)
	cfg := config.Baseline()
	prof, err := cache.Simulate(tr, cfg)
	if err != nil {
		b.Fatal(err)
	}
	tbl := model.BuildPCTable(tr.Prog, cfg, prof)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.BuildWarpProfilesWorkers(tr, cfg, tbl, workers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildWarpProfilesSequential is the one-worker baseline for
// BenchmarkBuildWarpProfilesParallel.
func BenchmarkBuildWarpProfilesSequential(b *testing.B) { benchBuildWarpProfiles(b, 1) }

// BenchmarkBuildWarpProfilesParallel profiles every warp using one worker
// per available CPU.
func BenchmarkBuildWarpProfilesParallel(b *testing.B) {
	benchBuildWarpProfiles(b, runtime.GOMAXPROCS(0))
}

// benchEvaluator builds Figure 11 from scratch each iteration (a fresh
// Evaluator, so nothing is served from the eval cache) at a fixed worker
// count.
func benchEvaluator(b *testing.B, workers int) {
	opt := benchOptions()
	opt.Workers = workers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := experiments.NewEvaluator(opt)
		if _, err := e.Run([]string{"fig11"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluatorSequential is the one-worker baseline for
// BenchmarkEvaluatorParallel.
func BenchmarkEvaluatorSequential(b *testing.B) { benchEvaluator(b, 1) }

// BenchmarkEvaluatorParallel runs the full evaluation pipeline — tracing,
// cache simulation, model chain, and oracle — on the worker pool.
func BenchmarkEvaluatorParallel(b *testing.B) { benchEvaluator(b, runtime.GOMAXPROCS(0)) }
