package gpumech

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"gpumech/internal/kernels"
)

// TestColumnarPathByteIdentical pins the tentpole equivalence claim of the
// columnar trace format: for every paper kernel and both policies, the
// model's output is byte-for-byte identical whether the trace reaches the
// pipeline as freshly-emulated rows, as a columnar v2 file streamed
// through cursors, or as a legacy v1 gob file. Any divergence between the
// storage layouts — decode drift, cursor ordering, lost record fields —
// fails here before it can move a golden figure.
func TestColumnarPathByteIdentical(t *testing.T) {
	names := kernels.PaperNames()
	if testing.Short() {
		names = names[:6]
	}
	policies := []struct {
		name string
		pol  Policy
	}{{"rr", RR}, {"gto", GTO}}

	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()

			info, err := kernels.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			// One columnar emulation, saved in both formats.
			tr, err := info.TraceColumnar(kernels.Scale{Blocks: DefaultBlocks(info.WarpsPerBlock), Seed: 1}, DefaultConfig().L1LineBytes)
			if err != nil {
				t.Fatal(err)
			}
			colPath := filepath.Join(dir, "col.trace")
			gobPath := filepath.Join(dir, "gob.trace")
			if err := tr.Save(colPath); err != nil {
				t.Fatal(err)
			}
			if err := tr.SaveLegacy(gobPath); err != nil {
				t.Fatal(err)
			}

			sessions := map[string]*Session{}
			rowSess, err := NewSession(name) // row records from a fresh emulation
			if err != nil {
				t.Fatal(err)
			}
			sessions["row"] = rowSess
			for label, path := range map[string]string{"columnar-file": colPath, "legacy-file": gobPath} {
				sess, err := NewSessionFromTraceFile(path)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				sessions[label] = sess
			}

			for _, p := range policies {
				var wantJSON []byte
				for _, label := range []string{"row", "columnar-file", "legacy-file"} {
					est, err := sessions[label].Estimate(DefaultConfig(), p.pol)
					if err != nil {
						t.Fatalf("%s %s: %v", label, p.name, err)
					}
					got, err := json.Marshal(est)
					if err != nil {
						t.Fatal(err)
					}
					if wantJSON == nil {
						wantJSON = got
						continue
					}
					if string(got) != string(wantJSON) {
						t.Errorf("%s %s: estimate differs from row path\n row: %s\n got: %s",
							label, p.name, wantJSON, got)
					}
				}
			}
		})
	}
}

// TestTraceCacheReuse pins the WithTraceCache contract: the first session
// writes a columnar trace file, the second loads it instead of emulating,
// and both produce the same estimate as an uncached session.
func TestTraceCacheReuse(t *testing.T) {
	const kernel = "sdk_vectoradd"
	dir := t.TempDir()

	estimate := func(sess *Session) []byte {
		t.Helper()
		est, err := sess.Estimate(DefaultConfig(), RR)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(est)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	plain, err := NewSession(kernel)
	if err != nil {
		t.Fatal(err)
	}
	want := estimate(plain)

	first, err := NewSession(kernel, WithTraceCache(dir))
	if err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("trace cache holds %d files after first session, want 1", len(ents))
	}
	if got := estimate(first); string(got) != string(want) {
		t.Errorf("cache-miss session estimate differs:\n want %s\n  got %s", want, got)
	}

	second, err := NewSession(kernel, WithTraceCache(dir))
	if err != nil {
		t.Fatal(err)
	}
	if got := estimate(second); string(got) != string(want) {
		t.Errorf("cache-hit session estimate differs:\n want %s\n  got %s", want, got)
	}
	// The cached trace must load columnar, not as materialized rows.
	if second.lazy.tr.Warps[0].Col() == nil {
		t.Error("cache-hit trace is not columnar-backed")
	}
}
