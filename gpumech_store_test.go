package gpumech

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"gpumech/internal/obs"
)

// estimateFingerprint renders an estimate to bytes so identity checks
// compare every field bit for bit (JSON renders float64 exactly).
func estimateFingerprint(t *testing.T, est *Estimate) string {
	t.Helper()
	b, err := json.Marshal(est)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestProfileStoreByteIdentity pins the store's core guarantee: an
// estimate served through the profile store — both the build-and-put
// path and the disk-hit path — is byte-identical to one computed without
// any store.
func TestProfileStoreByteIdentity(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig().WithWarps(16)

	plain, err := NewSession("sdk_vectoradd", WithBlocks(8))
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.Estimate(cfg, GTO)
	if err != nil {
		t.Fatal(err)
	}

	// Cold store: the estimate is built, persisted, and must match.
	cold, err := NewSession("sdk_vectoradd", WithBlocks(8), WithProfileStore(dir))
	if err != nil {
		t.Fatal(err)
	}
	got, err := cold.Estimate(cfg, GTO)
	if err != nil {
		t.Fatal(err)
	}
	if estimateFingerprint(t, got) != estimateFingerprint(t, want) {
		t.Errorf("store build-path estimate differs:\n want %s\n  got %s",
			estimateFingerprint(t, want), estimateFingerprint(t, got))
	}

	// Warm store, fresh session: the estimate comes from disk and must
	// still match, and the session must never have traced.
	reg := obs.NewRegistry()
	warm, err := NewSession("sdk_vectoradd", WithBlocks(8), WithProfileStore(dir),
		WithObserver(NewObserver(reg, nil)))
	if err != nil {
		t.Fatal(err)
	}
	got2, err := warm.Estimate(cfg, GTO)
	if err != nil {
		t.Fatal(err)
	}
	if estimateFingerprint(t, got2) != estimateFingerprint(t, want) {
		t.Errorf("store hit-path estimate differs:\n want %s\n  got %s",
			estimateFingerprint(t, want), estimateFingerprint(t, got2))
	}
	if n := reg.Counter("trace.kernels").Value(); n != 0 {
		t.Errorf("store-warm session traced %d kernels, want 0", n)
	}
	if h := reg.Counter("store.hits").Value(); h != 1 {
		t.Errorf("store.hits = %d, want 1", h)
	}
	// Metadata must be answerable without the trace.
	if warm.Warps() != plain.Warps() || warm.TotalInsts() != plain.TotalInsts() {
		t.Errorf("store-warm metadata (%d warps, %d insts) != traced (%d, %d)",
			warm.Warps(), warm.TotalInsts(), plain.Warps(), plain.TotalInsts())
	}
	if n := reg.Counter("trace.kernels").Value(); n != 0 {
		t.Errorf("metadata accessors forced a trace (%d kernels)", n)
	}
}

// TestProfileStoreSelectionMethods checks Max/Min selection through the
// store: the stored entry persists only the clustering representative,
// so other methods recompute from the loaded profiles and must agree
// with the storeless path.
func TestProfileStoreSelectionMethods(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()

	plain, err := NewSession("micro_copy", WithBlocks(8))
	if err != nil {
		t.Fatal(err)
	}
	stored, err := NewSession("micro_copy", WithBlocks(8), WithProfileStore(dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{Clustering, MaxWarp, MinWarp} {
		want, err := plain.EstimateWith(cfg, RR, MTMSHRBand, m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := stored.EstimateWith(cfg, RR, MTMSHRBand, m)
		if err != nil {
			t.Fatal(err)
		}
		if estimateFingerprint(t, got) != estimateFingerprint(t, want) {
			t.Errorf("method %v: store estimate differs", m)
		}
	}

	// Second process over the same directory: every method again, now
	// from the disk hit.
	hit, err := NewSession("micro_copy", WithBlocks(8), WithProfileStore(dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{Clustering, MaxWarp, MinWarp} {
		want, err := plain.EstimateWith(cfg, RR, MTMSHRBand, m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := hit.EstimateWith(cfg, RR, MTMSHRBand, m)
		if err != nil {
			t.Fatal(err)
		}
		if estimateFingerprint(t, got) != estimateFingerprint(t, want) {
			t.Errorf("method %v: disk-hit estimate differs", m)
		}
	}
}

// TestProfileStoreCorruptEntryRebuilds flips one byte of the stored
// entry and checks the next session treats it as a miss and rebuilds an
// identical file.
func TestProfileStoreCorruptEntryRebuilds(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	s1, err := NewSession("sdk_vectoradd", WithBlocks(4), WithProfileStore(dir))
	if err != nil {
		t.Fatal(err)
	}
	want, err := s1.Estimate(cfg, RR)
	if err != nil {
		t.Fatal(err)
	}
	ents, err := filepath.Glob(filepath.Join(dir, "*.gmpf"))
	if err != nil || len(ents) != 1 {
		t.Fatalf("want exactly one store entry, got %v (err %v)", ents, err)
	}
	clean, err := os.ReadFile(ents[0])
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), clean...)
	corrupt[len(corrupt)/2] ^= 0x40
	if err := os.WriteFile(ents[0], corrupt, 0o644); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	s2, err := NewSession("sdk_vectoradd", WithBlocks(4), WithProfileStore(dir),
		WithObserver(NewObserver(reg, nil)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Estimate(cfg, RR)
	if err != nil {
		t.Fatal(err)
	}
	if estimateFingerprint(t, got) != estimateFingerprint(t, want) {
		t.Errorf("rebuild after corruption produced a different estimate")
	}
	if c := reg.Counter("store.corrupt").Value(); c != 1 {
		t.Errorf("store.corrupt = %d, want 1", c)
	}
	if h := reg.Counter("store.hits").Value(); h != 0 {
		t.Errorf("store.hits = %d, want 0 (corrupt entry must not hit)", h)
	}
	rebuilt, err := os.ReadFile(ents[0])
	if err != nil {
		t.Fatal(err)
	}
	if string(rebuilt) != string(clean) {
		t.Errorf("rebuilt entry is not byte-identical to the original (%d vs %d bytes)",
			len(rebuilt), len(clean))
	}
}
