package gpumech

import (
	"testing"

	"gpumech/internal/obs"
)

// benchEstimate times the full instrumented pipeline end to end. Comparing
// the Disabled and Enabled variants (b.ReportAllocs on both) shows the
// cost of the observability hooks themselves: with a nil observer every
// instrument call must be a no-op, so allocs/op of the two must match.
func benchEstimate(b *testing.B, o *Observer) {
	sess, err := NewSession("sdk_vectoradd", WithObserver(o))
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	if _, err := sess.Estimate(cfg, RR); err != nil { // warm the cache-profile memo
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Estimate(cfg, RR); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateObserverDisabled(b *testing.B) { benchEstimate(b, nil) }

func BenchmarkEstimateObserverEnabled(b *testing.B) {
	benchEstimate(b, obs.NewObserver(obs.NewRegistry(), obs.NewTracer()))
}
