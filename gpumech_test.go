package gpumech

import (
	"strings"
	"testing"

	"gpumech/internal/obs"
)

func TestKernelRegistryComplete(t *testing.T) {
	suites := map[string]int{}
	for _, info := range KernelInfos() {
		suites[info.Suite]++
		if info.Description == "" {
			t.Errorf("%s has no description", info.Name)
		}
		if info.WarpsPerBlock <= 0 {
			t.Errorf("%s has no warps per block", info.Name)
		}
	}
	if paper := suites["rodinia"] + suites["parboil"] + suites["sdk"]; paper != 40 {
		t.Fatalf("paper evaluation set = %d kernels, want 40 (Section VI-A)", paper)
	}
	if suites["micro"] == 0 {
		t.Error("micro stressor kernels missing")
	}
}

func TestControlDivergentSubsetNonEmpty(t *testing.T) {
	n := 0
	for _, info := range KernelInfos() {
		if info.ControlDiv {
			n++
		}
	}
	if n < 8 {
		t.Errorf("control-divergent kernels = %d, want a healthy Figure 7 population", n)
	}
}

func TestNewSessionUnknownKernel(t *testing.T) {
	if _, err := NewSession("nope"); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("unknown kernel: %v", err)
	}
}

func TestSessionBasics(t *testing.T) {
	sess, err := NewSession("sdk_saxpy", WithBlocks(16), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if sess.Kernel() != "sdk_saxpy" || sess.Blocks() != 16 {
		t.Errorf("session meta wrong: %s %d", sess.Kernel(), sess.Blocks())
	}
	if sess.Warps() != 16*4 {
		t.Errorf("warps = %d, want 64", sess.Warps())
	}
	if sess.TotalInsts() == 0 {
		t.Error("empty trace")
	}
}

func TestEstimateLevelsMonotone(t *testing.T) {
	sess, err := NewSession("rodinia_srad1", WithBlocks(64))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	var prev float64
	for _, lvl := range []Level{MT, MTMSHR, MTMSHRBand} {
		est, err := sess.EstimateWith(cfg, RR, lvl, Clustering)
		if err != nil {
			t.Fatal(err)
		}
		if est.CPI < prev-1e-9 {
			t.Errorf("level %v CPI %g below previous %g", lvl, est.CPI, prev)
		}
		prev = est.CPI
	}
}

func TestEstimateDeterministic(t *testing.T) {
	sess, err := NewSession("rodinia_bfs", WithBlocks(32))
	if err != nil {
		t.Fatal(err)
	}
	a, err := sess.Estimate(DefaultConfig(), GTO)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sess.Estimate(DefaultConfig(), GTO)
	if err != nil {
		t.Fatal(err)
	}
	if a.CPI != b.CPI || a.RepWarp != b.RepWarp {
		t.Errorf("nondeterministic estimate: %+v vs %+v", a, b)
	}
}

func TestBaselinesAvailable(t *testing.T) {
	sess, err := NewSession("sdk_vectoradd", WithBlocks(32))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	for _, bm := range []BaselineModel{NaiveInterval, MarkovChain} {
		cpi, err := sess.EstimateBaseline(cfg, bm)
		if err != nil {
			t.Fatalf("%v: %v", bm, err)
		}
		if cpi < 1 {
			t.Errorf("%v CPI = %g below the issue bound", bm, cpi)
		}
	}
	if NaiveInterval.String() != "Naive_Interval" || MarkovChain.String() != "Markov_Chain" {
		t.Error("baseline names wrong")
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(1.2, 1.0); got < 0.199 || got > 0.201 {
		t.Errorf("RelativeError = %g", got)
	}
	if RelativeError(0.8, 1.0) != RelativeError(1.2, 1.0) {
		t.Error("not symmetric in magnitude")
	}
	if RelativeError(5, 0) != 0 {
		t.Error("zero oracle must be 0")
	}
}

func TestStackSumsToEstimate(t *testing.T) {
	sess, err := NewSession("rodinia_kmeans_point", WithBlocks(32))
	if err != nil {
		t.Fatal(err)
	}
	est, err := sess.Estimate(DefaultConfig(), RR)
	if err != nil {
		t.Fatal(err)
	}
	if d := est.Stack.CPI() - est.CPI; d > 1e-6 || d < -1e-6 {
		t.Errorf("stack %g != CPI %g", est.Stack.CPI(), est.CPI)
	}
}

func TestOracleAgreesAcrossCalls(t *testing.T) {
	sess, err := NewSession("parboil_stencil", WithBlocks(32))
	if err != nil {
		t.Fatal(err)
	}
	a, err := sess.Oracle(DefaultConfig(), RR)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sess.Oracle(DefaultConfig(), RR)
	if err != nil {
		t.Fatal(err)
	}
	if a.CPI != b.CPI || a.Cycles != b.Cycles {
		t.Error("oracle nondeterministic")
	}
}

func TestDefaultBlocks(t *testing.T) {
	if got := DefaultBlocks(4); got != 3*16*32/4 {
		t.Errorf("DefaultBlocks(4) = %d", got)
	}
	if got := DefaultBlocks(8); got != 3*16*32/8 {
		t.Errorf("DefaultBlocks(8) = %d", got)
	}
}

// TestMicroKernelModelBounds checks the model on the stressor kernels:
// pointer chasing is latency-serialized (high CPI for model and oracle),
// and the pure copy hits the bandwidth roofline in both.
func TestMicroKernelModelBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("not short")
	}
	for _, tc := range []struct {
		kernel string
		minCPI float64
	}{
		{"micro_pointer_chase", 2},
		{"micro_copy", 1.2},
	} {
		sess, err := NewSession(tc.kernel, WithBlocks(96))
		if err != nil {
			t.Fatal(err)
		}
		est, err := sess.Estimate(DefaultConfig(), RR)
		if err != nil {
			t.Fatal(err)
		}
		orc, err := sess.Oracle(DefaultConfig(), RR)
		if err != nil {
			t.Fatal(err)
		}
		if orc.CPI < tc.minCPI {
			t.Errorf("%s: oracle CPI %.2f below expected floor %.1f", tc.kernel, orc.CPI, tc.minCPI)
		}
		er := RelativeError(est.CPI, orc.CPI)
		t.Logf("%s: model %.2f oracle %.2f err %.1f%%", tc.kernel, est.CPI, orc.CPI, er*100)
		if er > 1.0 {
			t.Errorf("%s: model error %.0f%% beyond sanity", tc.kernel, er*100)
		}
	}
}

// TestModelTracksOracleAcrossAllKernels is the repository's accuracy
// regression guard: on every registered kernel (at a reduced grid), full
// GPUMech must stay within a sane per-kernel band and a tight aggregate
// band of the detailed simulation.
func TestModelTracksOracleAcrossAllKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-suite validation is not short")
	}
	var errs []float64
	for _, name := range Kernels() {
		sess, err := NewSession(name, WithBlocks(96))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		est, err := sess.Estimate(DefaultConfig(), RR)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		orc, err := sess.Oracle(DefaultConfig(), RR)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		er := RelativeError(est.CPI, orc.CPI)
		errs = append(errs, er)
		if er > 1.0 {
			t.Errorf("%s: error %.0f%% (model %.2f oracle %.2f) beyond the per-kernel band",
				name, er*100, est.CPI, orc.CPI)
		}
	}
	mean := 0.0
	for _, e := range errs {
		mean += e
	}
	mean /= float64(len(errs))
	t.Logf("mean error across %d kernels: %.1f%%", len(errs), mean*100)
	if mean > 0.25 {
		t.Errorf("mean error %.1f%% exceeds the 25%% aggregate band (paper headline: 13.2%%)", mean*100)
	}
}

func TestParsePolicy(t *testing.T) {
	if p, err := ParsePolicy("rr"); err != nil || p != RR {
		t.Fatalf("ParsePolicy(rr) = %v, %v", p, err)
	}
	if p, err := ParsePolicy("gto"); err != nil || p != GTO {
		t.Fatalf("ParsePolicy(gto) = %v, %v", p, err)
	}
	if _, err := ParsePolicy("fifo"); err == nil {
		t.Fatal("ParsePolicy must reject unknown policies")
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"mt": MT, "mshr": MTMSHR, "full": MTMSHRBand,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("turbo"); err == nil {
		t.Fatal("ParseLevel must reject unknown levels")
	}
}

// TestObservingSharesMemo proves an Observing view reuses the base
// session's cache-profile memo (no re-simulation) while reporting to its
// own observer, and that the view's estimates are identical.
func TestObservingSharesMemo(t *testing.T) {
	base, err := NewSession("sdk_vectoradd")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	want, err := base.Estimate(cfg, RR)
	if err != nil {
		t.Fatal(err)
	}

	reg := NewObserver(obs.NewRegistry(), nil)
	view := base.Observing(reg)
	got, err := view.Estimate(cfg, RR)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Fatalf("Observing view estimate differs:\n got %+v\nwant %+v", got, want)
	}
	s := reg.Metrics.Snapshot()
	if s.Counters["cache.profile.memo_hits"] != 1 || s.Counters["cache.profile.memo_misses"] != 0 {
		t.Fatalf("view must hit the shared memo, got hits=%d misses=%d",
			s.Counters["cache.profile.memo_hits"], s.Counters["cache.profile.memo_misses"])
	}
}
