// Scaling: the paper's Section VII-A application — use CPI stacks to find
// a kernel's performance saturation point as warps per core grow, without
// running the detailed simulator at every point.
//
// Run with: go run ./examples/scaling [kernel]
package main

import (
	"fmt"
	"log"
	"os"

	"gpumech"
)

func main() {
	kernel := "rodinia_cfd_compute_flux"
	if len(os.Args) > 1 {
		kernel = os.Args[1]
	}
	sess, err := gpumech.NewSession(kernel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scaling study for %s\n\n", sess.Kernel())
	fmt.Printf("%6s  %9s  %9s  %s\n", "warps", "model CPI", "core IPC", "dominant stack categories")

	bestWarps, bestIPC := 0, 0.0
	for _, w := range []int{4, 8, 16, 24, 32, 48} {
		cfg := gpumech.DefaultConfig().WithWarps(w)
		est, err := sess.Estimate(cfg, gpumech.GTO)
		if err != nil {
			log.Fatal(err)
		}
		// IPC per core: warps * perWarpIPC... CPI is per instruction, so
		// core IPC = 1/CPI regardless of the warp count.
		ipc := est.IPC
		top := est.Stack.Top()
		fmt.Printf("%6d  %9.3f  %9.3f  %s=%.2f %s=%.2f\n",
			w, est.CPI, ipc, top[0], est.Stack[top[0]], top[1], est.Stack[top[1]])
		if ipc > bestIPC {
			bestWarps, bestIPC = w, ipc
		}
	}
	fmt.Printf("\npredicted best occupancy: %d warps/core (IPC %.3f)\n", bestWarps, bestIPC)
	fmt.Println("growing MSHR/QUEUE categories signal the memory system saturating (paper Figure 16)")
}
