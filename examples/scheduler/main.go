// Scheduler: compare round-robin against greedy-then-oldest on kernels
// with different divergence characters, model vs oracle — the two policies
// GPUMech models (Section IV-A).
//
// Run with: go run ./examples/scheduler
package main

import (
	"fmt"
	"log"

	"gpumech"
)

func main() {
	kernels := []string{"sdk_blackscholes", "rodinia_cfd_compute_flux", "parboil_spmv"}
	cfg := gpumech.DefaultConfig()

	fmt.Printf("%-26s  %10s  %10s  %10s  %10s\n", "kernel", "model RR", "model GTO", "oracle RR", "oracle GTO")
	for _, k := range kernels {
		sess, err := gpumech.NewSession(k)
		if err != nil {
			log.Fatal(err)
		}
		var m, o [2]float64
		for i, pol := range []gpumech.Policy{gpumech.RR, gpumech.GTO} {
			est, err := sess.Estimate(cfg, pol)
			if err != nil {
				log.Fatal(err)
			}
			orc, err := sess.Oracle(cfg, pol)
			if err != nil {
				log.Fatal(err)
			}
			m[i], o[i] = est.CPI, orc.CPI
		}
		fmt.Printf("%-26s  %10.3f  %10.3f  %10.3f  %10.3f\n", k, m[0], m[1], o[0], o[1])
	}
	fmt.Println("\nGTO usually wins on latency-bound kernels by keeping one warp's locality;")
	fmt.Println("bandwidth-bound kernels are policy-insensitive (Section IV-B).")
}
