// Designspace: explore MSHR count x DRAM bandwidth for a memory-divergent
// kernel using only the model — the early-design-stage use case the paper
// motivates (one trace, many configurations, no cycle simulation).
//
// Run with: go run ./examples/designspace
package main

import (
	"fmt"
	"log"
	"time"

	"gpumech"
)

func main() {
	const kernel = "rodinia_cfd_compute_flux"
	sess, err := gpumech.NewSession(kernel)
	if err != nil {
		log.Fatal(err)
	}
	mshrs := []int{16, 32, 64, 128}
	bws := []float64{96, 192, 384}

	fmt.Printf("design space for %s: predicted CPI\n\n", kernel)
	fmt.Printf("%12s", "MSHRs\\GB/s")
	for _, bw := range bws {
		fmt.Printf("  %8.0f", bw)
	}
	fmt.Println()

	start := time.Now()
	type pt struct {
		m   int
		bw  float64
		cpi float64
	}
	best := pt{cpi: 1e18}
	for _, m := range mshrs {
		fmt.Printf("%12d", m)
		for _, bw := range bws {
			cfg := gpumech.DefaultConfig().WithMSHRs(m).WithBandwidth(bw)
			est, err := sess.Estimate(cfg, gpumech.RR)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %8.3f", est.CPI)
			if est.CPI < best.cpi {
				best = pt{m, bw, est.CPI}
			}
		}
		fmt.Println()
	}
	fmt.Printf("\n%d configurations evaluated in %.2fs (one trace, no cycle simulation)\n",
		len(mshrs)*len(bws), time.Since(start).Seconds())
	fmt.Printf("best point: %d MSHRs @ %.0f GB/s -> CPI %.3f\n", best.m, best.bw, best.cpi)
}
