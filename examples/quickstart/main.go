// Quickstart: model one kernel with GPUMech and validate against the
// detailed timing simulator.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gpumech"
)

func main() {
	// Trace the kernel once. The session holds the per-warp instruction
	// trace and can evaluate any number of hardware configurations.
	sess, err := gpumech.NewSession("sdk_vectoradd")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernel %s: %d warps, %d instructions\n",
		sess.Kernel(), sess.Warps(), sess.TotalInsts())

	cfg := gpumech.DefaultConfig() // Table I baseline
	est, err := sess.Estimate(cfg, gpumech.RR)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GPUMech: CPI %.3f = multithreading %.3f + contention %.3f\n",
		est.CPI, est.MultithreadingCPI, est.ContentionCPI)
	fmt.Printf("CPI stack: %v\n", est.Stack)

	// Validate against the cycle-level oracle.
	orc, err := sess.Oracle(cfg, gpumech.RR)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("oracle: CPI %.3f -> relative error %.1f%%\n",
		orc.CPI, gpumech.RelativeError(est.CPI, orc.CPI)*100)

	// The baselines the paper compares against.
	for _, b := range []gpumech.BaselineModel{gpumech.NaiveInterval, gpumech.MarkovChain} {
		cpi, err := sess.EstimateBaseline(cfg, b)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s CPI %.3f (error %.1f%%)\n", b, cpi, gpumech.RelativeError(cpi, orc.CPI)*100)
	}
}
