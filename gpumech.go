// Package gpumech is a Go implementation of GPUMech, the interval-
// analysis-based GPU performance modeling technique of Huang, Lee, Kim and
// Lee (MICRO 2014), together with every substrate the technique needs: a
// functional SIMT emulator, a cache simulator, a detailed cycle-level
// timing simulator used as the validation oracle, the benchmark kernels of
// the evaluation, and the Naive-Interval and Markov-Chain baseline models.
//
// The typical flow mirrors the paper's Figure 5:
//
//	sess, err := gpumech.NewSession("sdk_vectoradd")   // trace the kernel once
//	est, err := sess.Estimate(gpumech.DefaultConfig(), gpumech.RR)
//	fmt.Println(est.CPI, est.Stack)                    // prediction + CPI stack
//	orc, err := sess.Oracle(gpumech.DefaultConfig(), gpumech.RR)
//	fmt.Println(orc.CPI)                               // detailed simulation
//
// A Session owns the kernel's instruction trace and can evaluate many
// hardware configurations, scheduling policies, model levels, and baseline
// models against it.
package gpumech

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"gpumech/internal/baseline"
	"gpumech/internal/cache"
	"gpumech/internal/config"
	"gpumech/internal/core/cluster"
	"gpumech/internal/core/cpistack"
	"gpumech/internal/core/model"
	"gpumech/internal/kernels"
	"gpumech/internal/obs"
	"gpumech/internal/store"
	"gpumech/internal/timing"
	"gpumech/internal/trace"
)

// Observer is the observability handle threaded through a Session: a
// metrics registry plus a stage tracer (see internal/obs). A nil
// Observer disables all instrumentation at zero cost, and enabling one
// never changes any estimate or oracle figure.
type Observer = obs.Observer

// NewObserver bundles a metrics registry and a tracer; either may be nil.
func NewObserver(m *obs.Registry, t *obs.Tracer) *Observer { return obs.NewObserver(m, t) }

// Config is the hardware configuration (Table I of the paper).
type Config = config.Config

// DefaultConfig returns the paper's baseline configuration: 16 cores,
// 32-wide SIMT, 32 warps/core, 32 MSHRs, 192 GB/s DRAM.
func DefaultConfig() Config { return config.Baseline() }

// Policy is a warp scheduling policy.
type Policy = config.Policy

// Supported scheduling policies.
const (
	RR  = config.RR
	GTO = config.GTO
)

// ParsePolicy maps the user-facing policy names ("rr", "gto") onto a
// Policy — the shared validation for the -policy flag and the serve
// API's "policy" field.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "rr":
		return RR, nil
	case "gto":
		return GTO, nil
	}
	return RR, fmt.Errorf("unknown policy %q (want rr or gto)", s)
}

// ParseLevel maps the user-facing model-level names ("mt", "mshr",
// "full") onto a Level — the shared validation for the -level flag and
// the serve API's "level" field.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "mt":
		return MT, nil
	case "mshr":
		return MTMSHR, nil
	case "full":
		return MTMSHRBand, nil
	}
	return MTMSHRBand, fmt.Errorf("unknown level %q (want mt, mshr, full)", s)
}

// Level selects how much of GPUMech is applied (Table II).
type Level = model.Level

// Model levels: multithreading only, plus MSHR contention, plus DRAM
// bandwidth (full GPUMech).
const (
	MT         = model.MT
	MTMSHR     = model.MTMSHR
	MTMSHRBand = model.MTMSHRBand
)

// Method selects how the representative warp is chosen (Figure 7).
type Method = cluster.Method

// Representative-warp selection methods.
const (
	Clustering = cluster.Clustering
	MaxWarp    = cluster.Max
	MinWarp    = cluster.Min
)

// CPIStack is a predicted CPI broken into the Table III categories.
type CPIStack = cpistack.Stack

// Kernels returns the names of all bundled benchmark kernels.
func Kernels() []string { return kernels.Names() }

// KernelInfo describes a bundled kernel.
type KernelInfo struct {
	Name          string
	Suite         string
	Description   string
	ControlDiv    bool   // control-divergent warps
	MemDivergence string // none / low / medium / high
	WriteHeavy    bool
	WarpsPerBlock int
}

// KernelInfos returns metadata for every bundled kernel, sorted by name.
func KernelInfos() []KernelInfo {
	var out []KernelInfo
	for _, k := range kernels.All() {
		out = append(out, KernelInfo{
			Name:          k.Name,
			Suite:         k.Suite,
			Description:   k.Desc,
			ControlDiv:    k.ControlDiv,
			MemDivergence: k.MemDiv.String(),
			WriteHeavy:    k.WriteHeavy,
			WarpsPerBlock: k.WarpsPerBlock,
		})
	}
	return out
}

// Option customizes session creation.
type Option func(*sessionOpts)

type sessionOpts struct {
	blocks       int
	seed         int64
	line         int
	workers      int
	obs          *obs.Observer
	traceCache   string
	profileStore string
}

// WithBlocks sets the number of thread blocks to launch. The default
// gives every kernel at least three times the baseline system occupancy,
// matching the paper's methodology.
func WithBlocks(n int) Option { return func(o *sessionOpts) { o.blocks = n } }

// WithSeed sets the synthetic-input seed (default 1).
func WithSeed(seed int64) Option { return func(o *sessionOpts) { o.seed = seed } }

// WithWorkers bounds the goroutines one estimate fans out across warps
// (default: GPUMECH_WORKERS, then GOMAXPROCS; 1 forces the sequential
// path). Estimates are byte-identical at any worker count.
func WithWorkers(n int) Option { return func(o *sessionOpts) { o.workers = n } }

// WithTraceCache points the session at a directory of reusable columnar
// trace files, keyed by kernel, grid size, seed, and line size. On a hit
// the emulator is skipped and the trace is loaded in streaming columnar
// form; on a miss the kernel is traced column-first and saved for the
// next session. Corrupt or unreadable cache entries are re-traced and
// overwritten, never trusted.
func WithTraceCache(dir string) Option { return func(o *sessionOpts) { o.traceCache = dir } }

// WithProfileStore points the session at a content-addressed, disk-
// backed store of structural prep (internal/store): the cache profile,
// per-PC latency table, per-warp interval profiles, and clustering
// representative, keyed by kernel, grid, seed, line size, and every
// configuration field they depend on. With a store configured the
// session defers tracing entirely: an estimate whose prep is already on
// disk never runs the emulator or the cache simulator, so warm profiles
// survive process restarts and are shareable across processes pointed
// at the same directory. Corrupt, truncated, or version-skewed entries
// are detected by checksum and rebuilt from scratch — estimates are
// byte-identical with and without the store.
//
// NewSessionFromTraceFile ignores this option: a foreign trace file's
// seed and line-size identity is unknown, and keying the store on a
// guess could alias different traces.
func WithProfileStore(dir string) Option { return func(o *sessionOpts) { o.profileStore = dir } }

// WithObserver attaches an observability handle: every pipeline stage the
// session runs (tracing, cache simulation, interval profiling,
// clustering, the multi-warp and contention models, CPI-stack
// construction, the oracle) emits a nested span and per-stage metrics.
// A nil observer — the default — disables instrumentation entirely; the
// hot paths then perform no allocations and no locking for it.
func WithObserver(o *Observer) Option { return func(so *sessionOpts) { so.obs = o } }

// Session holds one traced kernel and evaluates models and the oracle
// against it. Create with NewSession.
//
// A Session is safe for concurrent use: the trace is immutable after
// NewSession, the cache-profile memo is lock-guarded, and a profile for a
// given configuration is simulated at most once even when many goroutines
// request it simultaneously. Callers may therefore sweep hardware
// configurations from multiple goroutines (the paper's design-space
// exploration mode) and rely on results identical to sequential calls.
type Session struct {
	name    string
	info    *kernels.Info // nil for sessions loaded from a trace file
	workers int
	obs     *obs.Observer

	// Resolved trace identity: the grid, input seed, and cache line size
	// the kernel is (or will be) traced with. Together with the kernel
	// name and the configuration they form the profile store's key.
	blocks int
	seed   int64
	line   int

	traceCacheDir string

	// store, when non-nil, is the content-addressed disk store of
	// structural prep; sessions with one defer tracing until an estimate
	// actually misses it.
	store *store.Store

	// lazy holds the kernel trace, built at most once per session (at
	// creation without a store, on first need with one), plus the
	// metadata a store hit can answer without the trace existing.
	lazy *lazyTrace

	// memo is shared by every view of this session (see Observing): the
	// trace is simulated per configuration at most once process-wide no
	// matter which view asked first.
	memo *profileMemo

	// prep memoizes store entries (disk hits and fresh builds alike) per
	// store key, so a warm key costs one disk read per process.
	prep *prepMemo
}

// lazyTrace is the session's at-most-once trace cell. The mutex also
// guards the store-supplied metadata, which lets a store-hit session
// answer Warps and TotalInsts without ever running the emulator.
type lazyTrace struct {
	mu  sync.Mutex
	tr  *trace.Kernel
	err error

	metaKnown  bool
	warps      int
	totalInsts int64
}

// profileMemo memoizes cache profiles per configuration key; each entry
// is simulated once (sync.Once) and shared by every waiter.
type profileMemo struct {
	mu       sync.Mutex
	profiles map[cache.ProfileKey]*profileOnce
}

type profileOnce struct {
	once sync.Once
	p    *cache.Profile
	err  error
}

// prepMemo memoizes structural prep per store key; each entry resolves
// once (disk hit or build-and-put) and is shared by every waiter.
type prepMemo struct {
	mu      sync.Mutex
	entries map[store.Key]*prepOnce
}

type prepOnce struct {
	once sync.Once
	e    *store.Entry
	err  error
}

// Observing returns a view of s that reports to o instead of the
// observer the session was created with, while sharing the trace and the
// cache-profile memo. A serving layer uses it to nest one request's
// evaluation spans under that request's span (via Observer.WithSpan)
// without re-tracing the kernel or abandoning memoized profiles; the
// receiver is not modified and both views remain safe for concurrent
// use. Observing(nil) returns an uninstrumented view.
func (s *Session) Observing(o *Observer) *Session {
	d := *s
	d.obs = o
	return &d
}

// DefaultBlocks returns the grid size NewSession uses for a kernel with
// the given warps per block: at least three times the system occupancy at
// the baseline residency (32 warps/core on 16 cores), matching the
// paper's methodology ("at least 3x system occupancy thread blocks"). The
// division rounds up, so an awkward warps-per-block value never drops the
// grid below the 3x floor. At the largest swept residency (48 warps/core)
// this still gives two full occupancy rounds.
func DefaultBlocks(warpsPerBlock int) int {
	return kernels.DefaultBlocks(warpsPerBlock)
}

// NewSession builds the named kernel, runs the functional emulator, and
// returns a session holding its trace. With a profile store configured
// (WithProfileStore) tracing is deferred: the emulator runs only when an
// estimate, oracle, or baseline actually needs the trace, so a store-warm
// session never pays for it.
func NewSession(kernel string, opts ...Option) (*Session, error) {
	info, err := kernels.Get(kernel)
	if err != nil {
		return nil, err
	}
	o := sessionOpts{seed: 1, line: 128}
	for _, fn := range opts {
		fn(&o)
	}
	if o.blocks == 0 {
		o.blocks = DefaultBlocks(info.WarpsPerBlock)
	}
	s := &Session{
		name:          info.Name,
		info:          info,
		workers:       o.workers,
		obs:           o.obs,
		blocks:        o.blocks,
		seed:          o.seed,
		line:          o.line,
		traceCacheDir: o.traceCache,
		lazy:          &lazyTrace{},
		memo:          &profileMemo{profiles: make(map[cache.ProfileKey]*profileOnce)},
		prep:          &prepMemo{entries: make(map[store.Key]*prepOnce)},
	}
	if o.profileStore != "" {
		if s.store, err = store.Open(o.profileStore, o.obs); err != nil {
			return nil, err
		}
		// Defer tracing: the whole point of the store is that a warm key
		// never runs the emulator. Trace errors surface on first use.
		return s, nil
	}
	if _, err := s.kernelTrace(o.obs); err != nil {
		return nil, err
	}
	return s, nil
}

// kernelTrace returns the session's trace, building it on first need:
// straight from the emulator by default, or through the columnar trace
// cache when one is configured. The build happens at most once; the
// error, if any, is sticky (trace failures are deterministic).
func (s *Session) kernelTrace(o *obs.Observer) (*trace.Kernel, error) {
	s.lazy.mu.Lock()
	defer s.lazy.mu.Unlock()
	if s.lazy.tr != nil || s.lazy.err != nil {
		return s.lazy.tr, s.lazy.err
	}
	sp := o.StartSpan("trace")
	sp.SetStr("kernel", s.name)
	start := time.Now()
	tr, err := buildTrace(s.info, s.blocks, s.seed, s.line, s.traceCacheDir)
	if err != nil {
		sp.End()
		s.lazy.err = err
		return nil, err
	}
	o.ObserveSince("stage.trace.seconds", start)
	sp.SetInt("blocks", int64(tr.Blocks))
	sp.SetInt("warps", int64(len(tr.Warps)))
	sp.SetInt("instructions", tr.TotalInsts())
	sp.End()
	if o != nil && o.Metrics != nil {
		o.Counter("trace.kernels").Inc()
		o.Counter("trace.instructions").Add(tr.TotalInsts())
	}
	s.lazy.tr = tr
	s.lazy.metaKnown = true
	s.lazy.warps = len(tr.Warps)
	s.lazy.totalInsts = tr.TotalInsts()
	return tr, nil
}

// buildTrace produces a kernel trace: straight from the emulator by
// default, or through the columnar trace cache when one is configured.
func buildTrace(info *kernels.Info, blocks int, seed int64, line int, cacheDir string) (*trace.Kernel, error) {
	scale := kernels.Scale{Blocks: blocks, Seed: seed}
	if cacheDir == "" {
		return info.Trace(scale, line)
	}
	path := filepath.Join(cacheDir,
		fmt.Sprintf("%s_b%d_s%d_l%d.trace", info.Name, blocks, seed, line))
	if tr, err := trace.LoadStream(path); err == nil && tr.Name == info.Name {
		return tr, nil
	}
	tr, err := info.TraceColumnar(scale, line)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return nil, fmt.Errorf("gpumech: trace cache: %w", err)
	}
	if err := tr.Save(path); err != nil {
		return nil, err
	}
	return tr, nil
}

// NewSessionFromTraceFile opens a session over a saved trace file instead
// of running the emulator. Columnar (v2) traces stay columnar: evaluation
// streams the records through cursors without materializing row slices.
// The kernel name is taken from the file and need not be a bundled kernel.
func NewSessionFromTraceFile(path string, opts ...Option) (*Session, error) {
	o := sessionOpts{seed: 1, line: 128}
	for _, fn := range opts {
		fn(&o)
	}
	sp := o.obs.StartSpan("trace-load")
	sp.SetStr("path", path)
	tr, err := trace.LoadStream(path)
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.SetStr("kernel", tr.Name)
	sp.SetInt("instructions", tr.TotalInsts())
	sp.End()
	info, _ := kernels.Get(tr.Name) // best-effort metadata; nil is fine
	return &Session{
		name:    tr.Name,
		info:    info,
		workers: o.workers,
		obs:     o.obs,
		blocks:  tr.Blocks,
		seed:    o.seed,
		line:    o.line,
		lazy: &lazyTrace{tr: tr, metaKnown: true,
			warps: len(tr.Warps), totalInsts: tr.TotalInsts()},
		memo: &profileMemo{profiles: make(map[cache.ProfileKey]*profileOnce)},
		prep: &prepMemo{entries: make(map[store.Key]*prepOnce)},
	}, nil
}

// Kernel returns the session's kernel name.
func (s *Session) Kernel() string { return s.name }

// Blocks returns the session's grid size (the traced one, or the one the
// kernel will be traced with when tracing is still deferred).
func (s *Session) Blocks() int { return s.blocks }

// TotalInsts returns the number of traced warp-instructions. On a
// store-warm session the figure comes from the stored entry; a session
// that has neither traced nor hit the store yet traces now.
func (s *Session) TotalInsts() int64 {
	s.lazy.mu.Lock()
	if s.lazy.metaKnown {
		n := s.lazy.totalInsts
		s.lazy.mu.Unlock()
		return n
	}
	s.lazy.mu.Unlock()
	tr, err := s.kernelTrace(s.obs)
	if err != nil {
		return 0
	}
	return tr.TotalInsts()
}

// Warps returns the total number of warps in the trace. Like TotalInsts
// it is answerable from store metadata without the trace.
func (s *Session) Warps() int {
	s.lazy.mu.Lock()
	if s.lazy.metaKnown {
		n := s.lazy.warps
		s.lazy.mu.Unlock()
		return n
	}
	s.lazy.mu.Unlock()
	tr, err := s.kernelTrace(s.obs)
	if err != nil {
		return 0
	}
	return len(tr.Warps)
}

// noteMeta records trace metadata learned from a store hit, so the
// session can report Warps and TotalInsts without the trace.
func (s *Session) noteMeta(warps int, totalInsts int64) {
	s.lazy.mu.Lock()
	if !s.lazy.metaKnown {
		s.lazy.metaKnown = true
		s.lazy.warps = warps
		s.lazy.totalInsts = totalInsts
	}
	s.lazy.mu.Unlock()
}

// cacheProfile memoizes cache.Simulate per cache-geometry key
// (config.Config.ProfileKey): the Config fields the profile depends on —
// geometry and latencies — with the cache residency pinned at the
// canonical profiling value (config.Config.ProfileConfig). Sweep points
// that differ only in warps, MSHRs or DRAM bandwidth therefore share one
// simulation, the paper's one-profile-per-input methodology, while
// changing any geometry or latency field re-simulates instead of serving
// a stale profile. The map is lock-guarded and each entry simulates once,
// making concurrent sweeps race-free without repeating work.
func (s *Session) cacheProfile(cfg Config, o *obs.Observer) (*cache.Profile, error) {
	// Validate eagerly: a memo hit must not mask an invalid configuration
	// whose fields happen to share a key with a previously valid one (and
	// canonicalization could make an invalid residency simulate cleanly).
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	key := cfg.ProfileKey()
	s.memo.mu.Lock()
	ent := s.memo.profiles[key]
	if ent == nil {
		ent = &profileOnce{}
		s.memo.profiles[key] = ent
	}
	s.memo.mu.Unlock()
	simulated := false
	ent.once.Do(func() {
		simulated = true
		tr, err := s.kernelTrace(o)
		if err != nil {
			ent.err = err
			return
		}
		sp := o.StartSpan("cache-sim")
		start := time.Now()
		ent.p, ent.err = cache.Simulate(tr, cfg.ProfileConfig())
		o.ObserveSince("stage.cachesim.seconds", start)
		sp.End()
		if ent.err == nil && o != nil && o.Metrics != nil {
			t := ent.p.Totals()
			o.Counter("cachesim.load_reqs").Add(t.LoadReqs)
			o.Counter("cachesim.store_reqs").Add(t.StoreReqs)
			o.Counter("cachesim.l1_hit_reqs").Add(t.L1HitReqs)
			o.Counter("cachesim.l2_hit_reqs").Add(t.L2HitReqs)
			o.Counter("cachesim.l2_miss_reqs").Add(t.L2MissReqs)
		}
	})
	if o != nil && o.Metrics != nil {
		if simulated {
			o.Counter("cache.profile.memo_misses").Inc()
		} else {
			o.Counter("cache.profile.memo_hits").Inc()
		}
	}
	return ent.p, ent.err
}

// Estimate is the model's prediction for a kernel under one configuration.
type Estimate struct {
	CPI float64 // predicted cycles per warp-instruction (per core)
	IPC float64

	MultithreadingCPI float64 // Eq. 7 component
	ContentionCPI     float64 // Eq. 17 component
	MSHRDelayCycles   float64 // total modeled MSHR queueing cycles
	DRAMDelayCycles   float64 // total modeled DRAM queueing cycles

	RepWarp   int      // index of the representative warp
	Stack     CPIStack // Table III CPI stack
	Intervals int      // intervals in the representative warp's profile
	WarpInsts int      // instructions of the representative warp
}

// Estimate runs full GPUMech (clustering selection, MT_MSHR_BAND level).
func (s *Session) Estimate(cfg Config, pol Policy) (*Estimate, error) {
	return s.EstimateWith(cfg, pol, MTMSHRBand, Clustering)
}

// EstimateWith runs GPUMech at a chosen model level and representative-
// warp selection method.
func (s *Session) EstimateWith(cfg Config, pol Policy, lvl Level, m Method) (*Estimate, error) {
	sp := s.obs.StartSpan("estimate")
	defer sp.End()
	sp.SetStr("kernel", s.name)
	sp.SetStr("policy", pol.String())
	sp.SetStr("method", m.String())
	o := s.obs.WithSpan(sp)
	if s.store != nil {
		return s.estimateStored(cfg, pol, lvl, m, o)
	}
	prof, err := s.cacheProfile(cfg, o)
	if err != nil {
		return nil, err
	}
	tr, err := s.kernelTrace(o)
	if err != nil {
		return nil, err
	}
	est, err := model.Run(model.Inputs{
		Kernel:  tr,
		Cfg:     cfg,
		Profile: prof,
		Policy:  pol,
		Method:  m,
		Level:   lvl,
		Workers: s.workers,
		Obs:     o,
	})
	if err != nil {
		return nil, err
	}
	return wrapEstimate(est), nil
}

// wrapEstimate converts the model-layer estimate into the public one.
func wrapEstimate(est *model.Estimate) *Estimate {
	return &Estimate{
		CPI:               est.CPI,
		IPC:               est.IPCPerCore(),
		MultithreadingCPI: est.CPIMultithreading,
		ContentionCPI:     est.CPIContention,
		MSHRDelayCycles:   est.Contention.MSHRDelay,
		DRAMDelayCycles:   est.Contention.BWDelay,
		RepWarp:           est.RepWarp,
		Stack:             est.Stack,
		Intervals:         len(est.RepProfile.Intervals),
		WarpInsts:         est.RepProfile.Insts,
	}
}

// estimateStored is EstimateWith through the profile store: the
// structural prep — cache profile, PC table, warp profiles, clustering
// representative — comes from disk when the key is warm and is built,
// persisted, and memoized when it is not. Either way the per-request
// model stages (multi-warp, contention, CPI stack) run through exactly
// the code model.Run runs, so estimates are byte-identical with and
// without the store.
func (s *Session) estimateStored(cfg Config, pol Policy, lvl Level, m Method, o *obs.Observer) (*Estimate, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ent, err := s.prepEntry(store.KeyFor(s.name, s.blocks, s.seed, s.line, cfg), cfg, o)
	if err != nil {
		return nil, err
	}
	rep := ent.Rep
	if m != Clustering {
		// Only the clustering selection is worth persisting; Max and Min
		// are single passes over the already-loaded profiles.
		if rep, err = model.SelectRepresentative(ent.WarpProfiles, m, o); err != nil {
			return nil, err
		}
	}
	est, err := model.RunWithRepresentative(model.Inputs{
		Cfg:     cfg,
		Profile: ent.Profile,
		Policy:  pol,
		Method:  m,
		Level:   lvl,
		Workers: s.workers,
		Obs:     o,
	}, ent.Table, ent.WarpProfiles, rep)
	if err != nil {
		return nil, err
	}
	return wrapEstimate(est), nil
}

// prepEntry resolves the structural prep for one store key: the
// in-process memo first, then the disk store, then a fresh build that is
// persisted for the next process. Each key resolves at most once per
// session; concurrent cold requests share one build.
func (s *Session) prepEntry(key store.Key, cfg Config, o *obs.Observer) (*store.Entry, error) {
	s.prep.mu.Lock()
	po := s.prep.entries[key]
	if po == nil {
		po = &prepOnce{}
		s.prep.entries[key] = po
	}
	s.prep.mu.Unlock()
	po.once.Do(func() {
		if e, ok := s.store.Get(key); ok {
			po.e = e
			s.noteMeta(e.Warps, e.TotalInsts)
			s.seedProfile(cfg, e.Profile)
			return
		}
		po.e, po.err = s.buildPrep(key, cfg, o)
	})
	return po.e, po.err
}

// buildPrep traces, simulates, and profiles one configuration from
// scratch — the exact stages the storeless path runs, through the same
// functions — then persists the result. A store write failure is
// recorded on the store's counters but does not fail the estimate: the
// prep in hand is valid either way.
func (s *Session) buildPrep(key store.Key, cfg Config, o *obs.Observer) (*store.Entry, error) {
	tr, err := s.kernelTrace(o)
	if err != nil {
		return nil, err
	}
	prof, err := s.cacheProfile(cfg, o)
	if err != nil {
		return nil, err
	}
	t, profiles, err := model.Structural(model.Inputs{
		Kernel:  tr,
		Cfg:     cfg,
		Profile: prof,
		Workers: s.workers,
		Obs:     o,
	})
	if err != nil {
		return nil, err
	}
	rep, err := model.SelectRepresentative(profiles, Clustering, o)
	if err != nil {
		return nil, err
	}
	e := &store.Entry{
		Key:          key,
		Warps:        len(tr.Warps),
		TotalInsts:   tr.TotalInsts(),
		Profile:      prof,
		Table:        t,
		WarpProfiles: profiles,
		Rep:          rep,
	}
	s.store.Put(key, e) // best-effort durability; errors are counted
	return e, nil
}

// seedProfile installs a store-loaded cache profile into the profile
// memo, so oracle-free flows that share the configuration's ProfileKey
// (baselines, other latency/issue variants) skip the cache simulator too.
func (s *Session) seedProfile(cfg Config, p *cache.Profile) {
	key := cfg.ProfileKey()
	s.memo.mu.Lock()
	ent := s.memo.profiles[key]
	if ent == nil {
		ent = &profileOnce{}
		s.memo.profiles[key] = ent
	}
	s.memo.mu.Unlock()
	ent.once.Do(func() { ent.p = p })
}

// BaselineModel identifies one of the paper's comparison models.
type BaselineModel int

const (
	// NaiveInterval is Eq. 1's optimistic-overlap prediction.
	NaiveInterval BaselineModel = iota
	// MarkovChain is Chen & Aamodt's first-order model (reference [9]).
	MarkovChain
)

func (b BaselineModel) String() string {
	if b == NaiveInterval {
		return "Naive_Interval"
	}
	return "Markov_Chain"
}

// EstimateBaseline predicts CPI with one of the comparison models. Both
// use the same representative warp as GPUMech (selected by clustering).
func (s *Session) EstimateBaseline(cfg Config, b BaselineModel) (float64, error) {
	sp := s.obs.StartSpan("estimate-baseline")
	defer sp.End()
	sp.SetStr("kernel", s.name)
	sp.SetStr("model", b.String())
	o := s.obs.WithSpan(sp)
	prof, err := s.cacheProfile(cfg, o)
	if err != nil {
		return 0, err
	}
	tr, err := s.kernelTrace(o)
	if err != nil {
		return 0, err
	}
	t := model.BuildPCTable(tr.Prog, cfg, prof)
	profiles, err := model.BuildWarpProfilesWorkers(tr, cfg, t, s.workers)
	if err != nil {
		return 0, err
	}
	rep, err := cluster.SelectObs(profiles, cluster.Clustering, o)
	if err != nil {
		return 0, err
	}
	switch b {
	case NaiveInterval:
		return baseline.NaiveInterval(profiles[rep], cfg.WarpsPerCore)
	case MarkovChain:
		return baseline.MarkovChain(profiles[rep], cfg.WarpsPerCore)
	}
	return 0, fmt.Errorf("gpumech: unknown baseline model %d", b)
}

// OracleResult is the outcome of the detailed timing simulation.
type OracleResult struct {
	CPI    float64
	IPC    float64
	Cycles int64 // completion cycle of the slowest core
	Insts  int64 // total issued warp-instructions

	// StallBreakdown is the measured share of core-cycles per stall
	// reason ("issue", "compute-dep", "memory-dep", "mshr", "dram-queue",
	// "barrier", "drain") — the oracle-side counterpart of the model's
	// CPI stack.
	StallBreakdown map[string]float64
}

// Oracle runs the detailed cycle-level timing simulator on the session's
// trace — the validation reference for the model (the paper's Macsim).
func (s *Session) Oracle(cfg Config, pol Policy) (*OracleResult, error) {
	sp := s.obs.StartSpan("oracle")
	sp.SetStr("kernel", s.name)
	sp.SetStr("policy", pol.String())
	tr, err := s.kernelTrace(s.obs)
	if err != nil {
		sp.End()
		return nil, err
	}
	start := time.Now()
	r, err := timing.Simulate(tr, cfg, pol)
	if err != nil {
		sp.End()
		return nil, err
	}
	s.obs.ObserveSince("stage.oracle.seconds", start)
	sp.SetInt("cycles", r.Cycles)
	sp.SetInt("instructions", r.Insts)
	sp.End()
	if s.obs != nil && s.obs.Metrics != nil {
		s.obs.Counter("oracle.runs").Inc()
		s.obs.Histogram("oracle.cpi").Observe(r.CPI)
	}
	return &OracleResult{CPI: r.CPI, IPC: r.IPC, Cycles: r.Cycles, Insts: r.Insts,
		StallBreakdown: r.StallBreakdown()}, nil
}

// RelativeError returns |predicted - oracle| / oracle, the paper's
// validation metric (Section VI-A).
func RelativeError(predicted, oracle float64) float64 {
	if oracle == 0 {
		return 0
	}
	e := (predicted - oracle) / oracle
	if e < 0 {
		e = -e
	}
	return e
}
