// Package gpumech is a Go implementation of GPUMech, the interval-
// analysis-based GPU performance modeling technique of Huang, Lee, Kim and
// Lee (MICRO 2014), together with every substrate the technique needs: a
// functional SIMT emulator, a cache simulator, a detailed cycle-level
// timing simulator used as the validation oracle, the benchmark kernels of
// the evaluation, and the Naive-Interval and Markov-Chain baseline models.
//
// The typical flow mirrors the paper's Figure 5:
//
//	sess, err := gpumech.NewSession("sdk_vectoradd")   // trace the kernel once
//	est, err := sess.Estimate(gpumech.DefaultConfig(), gpumech.RR)
//	fmt.Println(est.CPI, est.Stack)                    // prediction + CPI stack
//	orc, err := sess.Oracle(gpumech.DefaultConfig(), gpumech.RR)
//	fmt.Println(orc.CPI)                               // detailed simulation
//
// A Session owns the kernel's instruction trace and can evaluate many
// hardware configurations, scheduling policies, model levels, and baseline
// models against it.
package gpumech

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"gpumech/internal/baseline"
	"gpumech/internal/cache"
	"gpumech/internal/config"
	"gpumech/internal/core/cluster"
	"gpumech/internal/core/cpistack"
	"gpumech/internal/core/model"
	"gpumech/internal/kernels"
	"gpumech/internal/obs"
	"gpumech/internal/timing"
	"gpumech/internal/trace"
)

// Observer is the observability handle threaded through a Session: a
// metrics registry plus a stage tracer (see internal/obs). A nil
// Observer disables all instrumentation at zero cost, and enabling one
// never changes any estimate or oracle figure.
type Observer = obs.Observer

// NewObserver bundles a metrics registry and a tracer; either may be nil.
func NewObserver(m *obs.Registry, t *obs.Tracer) *Observer { return obs.NewObserver(m, t) }

// Config is the hardware configuration (Table I of the paper).
type Config = config.Config

// DefaultConfig returns the paper's baseline configuration: 16 cores,
// 32-wide SIMT, 32 warps/core, 32 MSHRs, 192 GB/s DRAM.
func DefaultConfig() Config { return config.Baseline() }

// Policy is a warp scheduling policy.
type Policy = config.Policy

// Supported scheduling policies.
const (
	RR  = config.RR
	GTO = config.GTO
)

// ParsePolicy maps the user-facing policy names ("rr", "gto") onto a
// Policy — the shared validation for the -policy flag and the serve
// API's "policy" field.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "rr":
		return RR, nil
	case "gto":
		return GTO, nil
	}
	return RR, fmt.Errorf("unknown policy %q (want rr or gto)", s)
}

// ParseLevel maps the user-facing model-level names ("mt", "mshr",
// "full") onto a Level — the shared validation for the -level flag and
// the serve API's "level" field.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "mt":
		return MT, nil
	case "mshr":
		return MTMSHR, nil
	case "full":
		return MTMSHRBand, nil
	}
	return MTMSHRBand, fmt.Errorf("unknown level %q (want mt, mshr, full)", s)
}

// Level selects how much of GPUMech is applied (Table II).
type Level = model.Level

// Model levels: multithreading only, plus MSHR contention, plus DRAM
// bandwidth (full GPUMech).
const (
	MT         = model.MT
	MTMSHR     = model.MTMSHR
	MTMSHRBand = model.MTMSHRBand
)

// Method selects how the representative warp is chosen (Figure 7).
type Method = cluster.Method

// Representative-warp selection methods.
const (
	Clustering = cluster.Clustering
	MaxWarp    = cluster.Max
	MinWarp    = cluster.Min
)

// CPIStack is a predicted CPI broken into the Table III categories.
type CPIStack = cpistack.Stack

// Kernels returns the names of all bundled benchmark kernels.
func Kernels() []string { return kernels.Names() }

// KernelInfo describes a bundled kernel.
type KernelInfo struct {
	Name          string
	Suite         string
	Description   string
	ControlDiv    bool   // control-divergent warps
	MemDivergence string // none / low / medium / high
	WriteHeavy    bool
	WarpsPerBlock int
}

// KernelInfos returns metadata for every bundled kernel, sorted by name.
func KernelInfos() []KernelInfo {
	var out []KernelInfo
	for _, k := range kernels.All() {
		out = append(out, KernelInfo{
			Name:          k.Name,
			Suite:         k.Suite,
			Description:   k.Desc,
			ControlDiv:    k.ControlDiv,
			MemDivergence: k.MemDiv.String(),
			WriteHeavy:    k.WriteHeavy,
			WarpsPerBlock: k.WarpsPerBlock,
		})
	}
	return out
}

// Option customizes session creation.
type Option func(*sessionOpts)

type sessionOpts struct {
	blocks     int
	seed       int64
	line       int
	workers    int
	obs        *obs.Observer
	traceCache string
}

// WithBlocks sets the number of thread blocks to launch. The default
// gives every kernel at least three times the baseline system occupancy,
// matching the paper's methodology.
func WithBlocks(n int) Option { return func(o *sessionOpts) { o.blocks = n } }

// WithSeed sets the synthetic-input seed (default 1).
func WithSeed(seed int64) Option { return func(o *sessionOpts) { o.seed = seed } }

// WithWorkers bounds the goroutines one estimate fans out across warps
// (default: GPUMECH_WORKERS, then GOMAXPROCS; 1 forces the sequential
// path). Estimates are byte-identical at any worker count.
func WithWorkers(n int) Option { return func(o *sessionOpts) { o.workers = n } }

// WithTraceCache points the session at a directory of reusable columnar
// trace files, keyed by kernel, grid size, seed, and line size. On a hit
// the emulator is skipped and the trace is loaded in streaming columnar
// form; on a miss the kernel is traced column-first and saved for the
// next session. Corrupt or unreadable cache entries are re-traced and
// overwritten, never trusted.
func WithTraceCache(dir string) Option { return func(o *sessionOpts) { o.traceCache = dir } }

// WithObserver attaches an observability handle: every pipeline stage the
// session runs (tracing, cache simulation, interval profiling,
// clustering, the multi-warp and contention models, CPI-stack
// construction, the oracle) emits a nested span and per-stage metrics.
// A nil observer — the default — disables instrumentation entirely; the
// hot paths then perform no allocations and no locking for it.
func WithObserver(o *Observer) Option { return func(so *sessionOpts) { so.obs = o } }

// Session holds one traced kernel and evaluates models and the oracle
// against it. Create with NewSession.
//
// A Session is safe for concurrent use: the trace is immutable after
// NewSession, the cache-profile memo is lock-guarded, and a profile for a
// given configuration is simulated at most once even when many goroutines
// request it simultaneously. Callers may therefore sweep hardware
// configurations from multiple goroutines (the paper's design-space
// exploration mode) and rely on results identical to sequential calls.
type Session struct {
	name    string
	info    *kernels.Info // nil for sessions loaded from a trace file
	trace   *trace.Kernel
	workers int
	obs     *obs.Observer

	// memo is shared by every view of this session (see Observing): the
	// trace is simulated per configuration at most once process-wide no
	// matter which view asked first.
	memo *profileMemo
}

// profileMemo memoizes cache profiles per configuration key; each entry
// is simulated once (sync.Once) and shared by every waiter.
type profileMemo struct {
	mu       sync.Mutex
	profiles map[cache.ProfileKey]*profileOnce
}

type profileOnce struct {
	once sync.Once
	p    *cache.Profile
	err  error
}

// Observing returns a view of s that reports to o instead of the
// observer the session was created with, while sharing the trace and the
// cache-profile memo. A serving layer uses it to nest one request's
// evaluation spans under that request's span (via Observer.WithSpan)
// without re-tracing the kernel or abandoning memoized profiles; the
// receiver is not modified and both views remain safe for concurrent
// use. Observing(nil) returns an uninstrumented view.
func (s *Session) Observing(o *Observer) *Session {
	d := *s
	d.obs = o
	return &d
}

// DefaultBlocks returns the grid size NewSession uses for a kernel with
// the given warps per block: at least three times the system occupancy at
// the baseline residency (32 warps/core on 16 cores), matching the
// paper's methodology ("at least 3x system occupancy thread blocks"). The
// division rounds up, so an awkward warps-per-block value never drops the
// grid below the 3x floor. At the largest swept residency (48 warps/core)
// this still gives two full occupancy rounds.
func DefaultBlocks(warpsPerBlock int) int {
	return kernels.DefaultBlocks(warpsPerBlock)
}

// NewSession builds the named kernel, runs the functional emulator, and
// returns a session holding its trace.
func NewSession(kernel string, opts ...Option) (*Session, error) {
	info, err := kernels.Get(kernel)
	if err != nil {
		return nil, err
	}
	o := sessionOpts{seed: 1, line: 128}
	for _, fn := range opts {
		fn(&o)
	}
	if o.blocks == 0 {
		o.blocks = DefaultBlocks(info.WarpsPerBlock)
	}
	sp := o.obs.StartSpan("trace")
	sp.SetStr("kernel", kernel)
	start := time.Now()
	tr, err := sessionTrace(info, &o)
	if err != nil {
		sp.End()
		return nil, err
	}
	o.obs.ObserveSince("stage.trace.seconds", start)
	sp.SetInt("blocks", int64(tr.Blocks))
	sp.SetInt("warps", int64(len(tr.Warps)))
	sp.SetInt("instructions", tr.TotalInsts())
	sp.End()
	if o.obs != nil && o.obs.Metrics != nil {
		o.obs.Counter("trace.kernels").Inc()
		o.obs.Counter("trace.instructions").Add(tr.TotalInsts())
	}
	return &Session{
		name:    info.Name,
		info:    info,
		trace:   tr,
		workers: o.workers,
		obs:     o.obs,
		memo:    &profileMemo{profiles: make(map[cache.ProfileKey]*profileOnce)},
	}, nil
}

// sessionTrace produces the session's kernel trace: straight from the
// emulator by default, or through the columnar trace cache when one is
// configured.
func sessionTrace(info *kernels.Info, o *sessionOpts) (*trace.Kernel, error) {
	scale := kernels.Scale{Blocks: o.blocks, Seed: o.seed}
	if o.traceCache == "" {
		return info.Trace(scale, o.line)
	}
	path := filepath.Join(o.traceCache,
		fmt.Sprintf("%s_b%d_s%d_l%d.trace", info.Name, o.blocks, o.seed, o.line))
	if tr, err := trace.LoadStream(path); err == nil && tr.Name == info.Name {
		return tr, nil
	}
	tr, err := info.TraceColumnar(scale, o.line)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(o.traceCache, 0o755); err != nil {
		return nil, fmt.Errorf("gpumech: trace cache: %w", err)
	}
	if err := tr.Save(path); err != nil {
		return nil, err
	}
	return tr, nil
}

// NewSessionFromTraceFile opens a session over a saved trace file instead
// of running the emulator. Columnar (v2) traces stay columnar: evaluation
// streams the records through cursors without materializing row slices.
// The kernel name is taken from the file and need not be a bundled kernel.
func NewSessionFromTraceFile(path string, opts ...Option) (*Session, error) {
	o := sessionOpts{seed: 1, line: 128}
	for _, fn := range opts {
		fn(&o)
	}
	sp := o.obs.StartSpan("trace-load")
	sp.SetStr("path", path)
	tr, err := trace.LoadStream(path)
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.SetStr("kernel", tr.Name)
	sp.SetInt("instructions", tr.TotalInsts())
	sp.End()
	info, _ := kernels.Get(tr.Name) // best-effort metadata; nil is fine
	return &Session{
		name:    tr.Name,
		info:    info,
		trace:   tr,
		workers: o.workers,
		obs:     o.obs,
		memo:    &profileMemo{profiles: make(map[cache.ProfileKey]*profileOnce)},
	}, nil
}

// Kernel returns the session's kernel name.
func (s *Session) Kernel() string { return s.name }

// Blocks returns the traced grid size.
func (s *Session) Blocks() int { return s.trace.Blocks }

// TotalInsts returns the number of traced warp-instructions.
func (s *Session) TotalInsts() int64 { return s.trace.TotalInsts() }

// Warps returns the total number of warps in the trace.
func (s *Session) Warps() int { return len(s.trace.Warps) }

// cacheProfile memoizes cache.Simulate per cache-geometry key
// (config.Config.ProfileKey): the Config fields the profile depends on —
// geometry and latencies — with the cache residency pinned at the
// canonical profiling value (config.Config.ProfileConfig). Sweep points
// that differ only in warps, MSHRs or DRAM bandwidth therefore share one
// simulation, the paper's one-profile-per-input methodology, while
// changing any geometry or latency field re-simulates instead of serving
// a stale profile. The map is lock-guarded and each entry simulates once,
// making concurrent sweeps race-free without repeating work.
func (s *Session) cacheProfile(cfg Config, o *obs.Observer) (*cache.Profile, error) {
	// Validate eagerly: a memo hit must not mask an invalid configuration
	// whose fields happen to share a key with a previously valid one (and
	// canonicalization could make an invalid residency simulate cleanly).
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	key := cfg.ProfileKey()
	s.memo.mu.Lock()
	ent := s.memo.profiles[key]
	if ent == nil {
		ent = &profileOnce{}
		s.memo.profiles[key] = ent
	}
	s.memo.mu.Unlock()
	simulated := false
	ent.once.Do(func() {
		simulated = true
		sp := o.StartSpan("cache-sim")
		start := time.Now()
		ent.p, ent.err = cache.Simulate(s.trace, cfg.ProfileConfig())
		o.ObserveSince("stage.cachesim.seconds", start)
		sp.End()
		if ent.err == nil && o != nil && o.Metrics != nil {
			t := ent.p.Totals()
			o.Counter("cachesim.load_reqs").Add(t.LoadReqs)
			o.Counter("cachesim.store_reqs").Add(t.StoreReqs)
			o.Counter("cachesim.l1_hit_reqs").Add(t.L1HitReqs)
			o.Counter("cachesim.l2_hit_reqs").Add(t.L2HitReqs)
			o.Counter("cachesim.l2_miss_reqs").Add(t.L2MissReqs)
		}
	})
	if o != nil && o.Metrics != nil {
		if simulated {
			o.Counter("cache.profile.memo_misses").Inc()
		} else {
			o.Counter("cache.profile.memo_hits").Inc()
		}
	}
	return ent.p, ent.err
}

// Estimate is the model's prediction for a kernel under one configuration.
type Estimate struct {
	CPI float64 // predicted cycles per warp-instruction (per core)
	IPC float64

	MultithreadingCPI float64 // Eq. 7 component
	ContentionCPI     float64 // Eq. 17 component
	MSHRDelayCycles   float64 // total modeled MSHR queueing cycles
	DRAMDelayCycles   float64 // total modeled DRAM queueing cycles

	RepWarp   int      // index of the representative warp
	Stack     CPIStack // Table III CPI stack
	Intervals int      // intervals in the representative warp's profile
	WarpInsts int      // instructions of the representative warp
}

// Estimate runs full GPUMech (clustering selection, MT_MSHR_BAND level).
func (s *Session) Estimate(cfg Config, pol Policy) (*Estimate, error) {
	return s.EstimateWith(cfg, pol, MTMSHRBand, Clustering)
}

// EstimateWith runs GPUMech at a chosen model level and representative-
// warp selection method.
func (s *Session) EstimateWith(cfg Config, pol Policy, lvl Level, m Method) (*Estimate, error) {
	sp := s.obs.StartSpan("estimate")
	defer sp.End()
	sp.SetStr("kernel", s.name)
	sp.SetStr("policy", pol.String())
	sp.SetStr("method", m.String())
	o := s.obs.WithSpan(sp)
	prof, err := s.cacheProfile(cfg, o)
	if err != nil {
		return nil, err
	}
	est, err := model.Run(model.Inputs{
		Kernel:  s.trace,
		Cfg:     cfg,
		Profile: prof,
		Policy:  pol,
		Method:  m,
		Level:   lvl,
		Workers: s.workers,
		Obs:     o,
	})
	if err != nil {
		return nil, err
	}
	return &Estimate{
		CPI:               est.CPI,
		IPC:               est.IPCPerCore(),
		MultithreadingCPI: est.CPIMultithreading,
		ContentionCPI:     est.CPIContention,
		MSHRDelayCycles:   est.Contention.MSHRDelay,
		DRAMDelayCycles:   est.Contention.BWDelay,
		RepWarp:           est.RepWarp,
		Stack:             est.Stack,
		Intervals:         len(est.RepProfile.Intervals),
		WarpInsts:         est.RepProfile.Insts,
	}, nil
}

// BaselineModel identifies one of the paper's comparison models.
type BaselineModel int

const (
	// NaiveInterval is Eq. 1's optimistic-overlap prediction.
	NaiveInterval BaselineModel = iota
	// MarkovChain is Chen & Aamodt's first-order model (reference [9]).
	MarkovChain
)

func (b BaselineModel) String() string {
	if b == NaiveInterval {
		return "Naive_Interval"
	}
	return "Markov_Chain"
}

// EstimateBaseline predicts CPI with one of the comparison models. Both
// use the same representative warp as GPUMech (selected by clustering).
func (s *Session) EstimateBaseline(cfg Config, b BaselineModel) (float64, error) {
	sp := s.obs.StartSpan("estimate-baseline")
	defer sp.End()
	sp.SetStr("kernel", s.name)
	sp.SetStr("model", b.String())
	o := s.obs.WithSpan(sp)
	prof, err := s.cacheProfile(cfg, o)
	if err != nil {
		return 0, err
	}
	t := model.BuildPCTable(s.trace.Prog, cfg, prof)
	profiles, err := model.BuildWarpProfilesWorkers(s.trace, cfg, t, s.workers)
	if err != nil {
		return 0, err
	}
	rep, err := cluster.SelectObs(profiles, cluster.Clustering, o)
	if err != nil {
		return 0, err
	}
	switch b {
	case NaiveInterval:
		return baseline.NaiveInterval(profiles[rep], cfg.WarpsPerCore)
	case MarkovChain:
		return baseline.MarkovChain(profiles[rep], cfg.WarpsPerCore)
	}
	return 0, fmt.Errorf("gpumech: unknown baseline model %d", b)
}

// OracleResult is the outcome of the detailed timing simulation.
type OracleResult struct {
	CPI    float64
	IPC    float64
	Cycles int64 // completion cycle of the slowest core
	Insts  int64 // total issued warp-instructions

	// StallBreakdown is the measured share of core-cycles per stall
	// reason ("issue", "compute-dep", "memory-dep", "mshr", "dram-queue",
	// "barrier", "drain") — the oracle-side counterpart of the model's
	// CPI stack.
	StallBreakdown map[string]float64
}

// Oracle runs the detailed cycle-level timing simulator on the session's
// trace — the validation reference for the model (the paper's Macsim).
func (s *Session) Oracle(cfg Config, pol Policy) (*OracleResult, error) {
	sp := s.obs.StartSpan("oracle")
	sp.SetStr("kernel", s.name)
	sp.SetStr("policy", pol.String())
	start := time.Now()
	r, err := timing.Simulate(s.trace, cfg, pol)
	if err != nil {
		sp.End()
		return nil, err
	}
	s.obs.ObserveSince("stage.oracle.seconds", start)
	sp.SetInt("cycles", r.Cycles)
	sp.SetInt("instructions", r.Insts)
	sp.End()
	if s.obs != nil && s.obs.Metrics != nil {
		s.obs.Counter("oracle.runs").Inc()
		s.obs.Histogram("oracle.cpi").Observe(r.CPI)
	}
	return &OracleResult{CPI: r.CPI, IPC: r.IPC, Cycles: r.Cycles, Insts: r.Insts,
		StallBreakdown: r.StallBreakdown()}, nil
}

// RelativeError returns |predicted - oracle| / oracle, the paper's
// validation metric (Section VI-A).
func RelativeError(predicted, oracle float64) float64 {
	if oracle == 0 {
		return 0
	}
	e := (predicted - oracle) / oracle
	if e < 0 {
		e = -e
	}
	return e
}
