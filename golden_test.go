package gpumech

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"gpumech/internal/kernels"
)

// -update rewrites the golden files from the current model output:
//
//	go test -run TestGoldenEstimates -update
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden files from current model output")

// goldenEntry pins every figure of one (kernel, policy) estimate at the
// baseline configuration. Floats are compared at 1e-9 relative tolerance —
// tight enough that any reassociation of a floating-point reduction or an
// accidental model change trips the suite, loose enough to survive
// encoding round-trips.
type goldenEntry struct {
	CPI               float64  `json:"cpi"`
	MultithreadingCPI float64  `json:"multithreadingCPI"`
	ContentionCPI     float64  `json:"contentionCPI"`
	RepWarp           int      `json:"repWarp"`
	Intervals         int      `json:"intervals"`
	WarpInsts         int      `json:"warpInsts"`
	Stack             CPIStack `json:"stack"`
}

func goldenPath(policy string) string {
	return filepath.Join("testdata", "golden", policy+".json")
}

func loadGolden(t *testing.T, policy string) map[string]goldenEntry {
	t.Helper()
	data, err := os.ReadFile(goldenPath(policy))
	if err != nil {
		t.Fatalf("missing golden file (generate with: go test -run TestGoldenEstimates -update): %v", err)
	}
	out := make(map[string]goldenEntry)
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("corrupt golden file %s: %v", goldenPath(policy), err)
	}
	return out
}

func relClose(a, b, tol float64) bool {
	if a == b {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*m
}

func diffEntry(got, want goldenEntry) string {
	const tol = 1e-9
	if got.RepWarp != want.RepWarp {
		return fmt.Sprintf("repWarp = %d, want %d", got.RepWarp, want.RepWarp)
	}
	if got.Intervals != want.Intervals {
		return fmt.Sprintf("intervals = %d, want %d", got.Intervals, want.Intervals)
	}
	if got.WarpInsts != want.WarpInsts {
		return fmt.Sprintf("warpInsts = %d, want %d", got.WarpInsts, want.WarpInsts)
	}
	if !relClose(got.CPI, want.CPI, tol) {
		return fmt.Sprintf("CPI = %.15g, want %.15g", got.CPI, want.CPI)
	}
	if !relClose(got.MultithreadingCPI, want.MultithreadingCPI, tol) {
		return fmt.Sprintf("multithreading CPI = %.15g, want %.15g", got.MultithreadingCPI, want.MultithreadingCPI)
	}
	if !relClose(got.ContentionCPI, want.ContentionCPI, tol) {
		return fmt.Sprintf("contention CPI = %.15g, want %.15g", got.ContentionCPI, want.ContentionCPI)
	}
	for i := range got.Stack {
		if !relClose(got.Stack[i], want.Stack[i], tol) {
			return fmt.Sprintf("stack[%d] = %.15g, want %.15g", i, got.Stack[i], want.Stack[i])
		}
	}
	return ""
}

// TestGoldenEstimates locks the full-model prediction (CPI, components,
// CPI stack, representative-warp identity) for every paper kernel under
// both scheduling policies against checked-in golden files. Any change to
// the model, the cache simulator, the interval algorithm, clustering or
// the trace generator that moves a figure fails here; deliberate changes
// re-bless with -update.
func TestGoldenEstimates(t *testing.T) {
	names := kernels.PaperNames()
	if len(names) != 40 {
		t.Fatalf("paper kernel set = %d kernels, want 40", len(names))
	}
	policies := []struct {
		name string
		pol  Policy
	}{{"rr", RR}, {"gto", GTO}}

	golden := make(map[string]map[string]goldenEntry)
	if !*updateGolden {
		for _, p := range policies {
			golden[p.name] = loadGolden(t, p.name)
		}
	}

	var mu sync.Mutex
	got := map[string]map[string]goldenEntry{"rr": {}, "gto": {}}

	t.Run("kernels", func(t *testing.T) {
		for _, name := range names {
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				sess, err := NewSession(name)
				if err != nil {
					t.Fatal(err)
				}
				for _, p := range policies {
					est, err := sess.Estimate(DefaultConfig(), p.pol)
					if err != nil {
						t.Fatalf("%s: %v", p.name, err)
					}
					entry := goldenEntry{
						CPI:               est.CPI,
						MultithreadingCPI: est.MultithreadingCPI,
						ContentionCPI:     est.ContentionCPI,
						RepWarp:           est.RepWarp,
						Intervals:         est.Intervals,
						WarpInsts:         est.WarpInsts,
						Stack:             est.Stack,
					}
					if *updateGolden {
						mu.Lock()
						got[p.name][name] = entry
						mu.Unlock()
						continue
					}
					want, ok := golden[p.name][name]
					if !ok {
						t.Fatalf("%s: no golden entry (re-bless with -update)", p.name)
					}
					if d := diffEntry(entry, want); d != "" {
						t.Errorf("%s: %s", p.name, d)
					}
				}
			})
		}
	})

	if *updateGolden && !t.Failed() {
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
		for _, p := range policies {
			data, err := json.MarshalIndent(got[p.name], "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(goldenPath(p.name), append(data, '\n'), 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s (%d kernels)", goldenPath(p.name), len(got[p.name]))
		}
	}
}
