package gpumech

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"gpumech/internal/core/interval"
	"gpumech/internal/isa"
	"gpumech/internal/kernels"
	"gpumech/internal/trace"
)

// benchTraceDoc is the schema of BENCH_trace.json: the headline numbers
// of the columnar trace format against the legacy gob encoding, measured
// on a real kernel trace. CI writes it as a build artifact (set
// GPUMECH_BENCH_OUT to a path); EXPERIMENTS.md records a blessed copy.
type benchTraceDoc struct {
	Kernel  string `json:"kernel"`
	Blocks  int    `json:"blocks"`
	Records int64  `json:"records"`

	// On-disk footprint (gzip-compressed, bytes).
	SizeColumnar int     `json:"sizeColumnarBytes"`
	SizeLegacy   int     `json:"sizeLegacyBytes"`
	SizeRatio    float64 `json:"legacyOverColumnarSize"`

	// Full-file encode/decode wall time (ns per file).
	EncodeColumnarNs int64   `json:"encodeColumnarNs"`
	EncodeLegacyNs   int64   `json:"encodeLegacyNs"`
	DecodeColumnarNs int64   `json:"decodeColumnarNs"`
	DecodeLegacyNs   int64   `json:"decodeLegacyNs"`
	DecodeSpeedup    float64 `json:"legacyOverColumnarDecode"`

	// Interval-algorithm footprint per Build call over a columnar warp:
	// flat bytes/op across a 100x record range is the O(window) proof.
	IntervalBuild []intervalBuildPoint `json:"intervalBuild"`

	// End-to-end: session construction (trace acquisition included) plus
	// one full estimate, from the emulator vs from a columnar trace file.
	EvaluateEmulateNs int64 `json:"evaluateFromEmulatorNs"`
	EvaluateColFileNs int64 `json:"evaluateFromColumnarFileNs"`
	EvaluateGobFileNs int64 `json:"evaluateFromLegacyFileNs"`
}

type intervalBuildPoint struct {
	Records     int   `json:"records"`
	BytesPerOp  int64 `json:"bytesPerOp"`
	AllocsPerOp int64 `json:"allocsPerOp"`
}

// TestWriteBenchTrace measures the trace-format benchmarks and writes
// BENCH_trace.json to $GPUMECH_BENCH_OUT. Without the variable it skips:
// plain test runs must not spend benchmark time.
func TestWriteBenchTrace(t *testing.T) {
	out := os.Getenv("GPUMECH_BENCH_OUT")
	if out == "" {
		t.Skip("set GPUMECH_BENCH_OUT=path to write BENCH_trace.json")
	}

	const kernel = "rodinia_cfd_compute_flux"
	const blocks = 128
	info, err := kernels.Get(kernel)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := info.TraceColumnar(kernels.Scale{Blocks: blocks, Seed: 1}, 128)
	if err != nil {
		t.Fatal(err)
	}

	var colBuf, gobBuf bytes.Buffer
	if err := tr.Encode(&colBuf); err != nil {
		t.Fatal(err)
	}
	if err := tr.EncodeLegacy(&gobBuf); err != nil {
		t.Fatal(err)
	}

	doc := benchTraceDoc{
		Kernel:       kernel,
		Blocks:       blocks,
		Records:      tr.TotalInsts(),
		SizeColumnar: colBuf.Len(),
		SizeLegacy:   gobBuf.Len(),
		SizeRatio:    float64(gobBuf.Len()) / float64(colBuf.Len()),
	}

	nsPerOp := func(f func(b *testing.B)) int64 {
		return testing.Benchmark(f).NsPerOp()
	}
	doc.EncodeColumnarNs = nsPerOp(func(b *testing.B) {
		var buf bytes.Buffer
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := tr.Encode(&buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	doc.EncodeLegacyNs = nsPerOp(func(b *testing.B) {
		var buf bytes.Buffer
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := tr.EncodeLegacy(&buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	doc.DecodeColumnarNs = nsPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := trace.ReadKernelStream(bytes.NewReader(colBuf.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	doc.DecodeLegacyNs = nsPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := trace.ReadKernelStream(bytes.NewReader(gobBuf.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	doc.DecodeSpeedup = float64(doc.DecodeLegacyNs) / float64(doc.DecodeColumnarNs)

	// Interval memory independence. The look-back state must be O(window):
	// a stall-free synthetic warp (no instruction reads a register) keeps
	// the profile itself at one interval, so any growth in bytes/op with
	// trace length would expose record-indexed state. Real warps allocate
	// proportionally to their *output* (one Interval per stall), which is
	// inherent and not what this measures.
	tbl := &interval.PCTable{Latency: []float64{1, 8}}
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		var cb trace.ColBuilder
		for i := 0; i < n; i++ {
			r := trace.Rec{PC: 0, Op: isa.OpMovI, Dst: isa.Reg(2 + i%4), Mask: 0xFFFFFFFF,
				Srcs: [4]isa.Reg{isa.RegNone, isa.RegNone, isa.RegNone, isa.RegNone}}
			if i%8 == 0 {
				r.PC, r.Op, r.Mem = 1, isa.OpLdG, isa.MemF32
				r.Lines = []uint64{uint64(i) * 128}
			}
			if err := cb.Append(&r); err != nil {
				t.Fatal(err)
			}
		}
		w := trace.NewColWarpTrace(0, 0, cb.Finish())
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := interval.Build(w, 16, 1, tbl); err != nil {
					b.Fatal(err)
				}
			}
		})
		doc.IntervalBuild = append(doc.IntervalBuild, intervalBuildPoint{
			Records:     w.Insts(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		})
	}

	// End-to-end: trace acquisition + full estimate.
	dir := t.TempDir()
	colPath, gobPath := dir+"/col.trace", dir+"/gob.trace"
	smallInfo, err := kernels.Get("rodinia_srad1")
	if err != nil {
		t.Fatal(err)
	}
	smallTr, err := smallInfo.TraceColumnar(kernels.Scale{Blocks: DefaultBlocks(smallInfo.WarpsPerBlock), Seed: 1}, 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := smallTr.Save(colPath); err != nil {
		t.Fatal(err)
	}
	if err := smallTr.SaveLegacy(gobPath); err != nil {
		t.Fatal(err)
	}
	estimate := func(b *testing.B, open func() (*Session, error)) {
		for i := 0; i < b.N; i++ {
			sess, err := open()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sess.Estimate(DefaultConfig(), RR); err != nil {
				b.Fatal(err)
			}
		}
	}
	doc.EvaluateEmulateNs = nsPerOp(func(b *testing.B) {
		estimate(b, func() (*Session, error) { return NewSession("rodinia_srad1") })
	})
	doc.EvaluateColFileNs = nsPerOp(func(b *testing.B) {
		estimate(b, func() (*Session, error) { return NewSessionFromTraceFile(colPath) })
	})
	doc.EvaluateGobFileNs = nsPerOp(func(b *testing.B) {
		estimate(b, func() (*Session, error) { return NewSessionFromTraceFile(gobPath) })
	})

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s:\n%s", out, data)
}
