//go:build race

package gpumech

// raceEnabled trims or skips the heavy differential sweeps when the race
// detector multiplies their cost; full-scale runs belong to the non-race
// job.
const raceEnabled = true
