module gpumech

go 1.22
