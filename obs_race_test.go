package gpumech

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"gpumech/internal/obs"
)

// TestConcurrentSessionWithMetrics hammers one Session from many
// goroutines with a shared live observer — estimates under both policies,
// baselines and oracle runs all racing on the cache-profile memo, the
// metrics registry and the span tree. Run under -race this is the
// concurrency proof for the instrumented pipeline.
func TestConcurrentSessionWithMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	o := obs.NewObserver(reg, tr)
	sess, err := NewSession("sdk_vectoradd", WithObserver(o))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()

	want, err := sess.Estimate(cfg, RR)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const iters = 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*iters*3)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				est, err := sess.Estimate(cfg, RR)
				if err != nil {
					errs <- err
					continue
				}
				if !reflect.DeepEqual(est, want) {
					t.Errorf("goroutine %d: concurrent estimate diverged", g)
				}
				if _, err := sess.Estimate(cfg, GTO); err != nil {
					errs <- err
				}
				if _, err := sess.EstimateBaseline(cfg, NaiveInterval); err != nil {
					errs <- err
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The shared registry and tracer must have survived the stampede in a
	// consistent, serializable state.
	if n := reg.Counter("cache.profile.memo_hits").Value() + reg.Counter("cache.profile.memo_misses").Value(); n < goroutines*iters {
		t.Errorf("memo counters saw %d lookups, want at least %d", n, goroutines*iters)
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestObserverDoesNotChangeEstimates is the byte-identical guarantee: the
// model figures with a live observer attached must equal the figures with
// no observer at all, exactly — instrumentation may time and count, never
// perturb.
func TestObserverDoesNotChangeEstimates(t *testing.T) {
	cfg := DefaultConfig()
	for _, kernel := range []string{"sdk_vectoradd", "sdk_matrixmul_naive"} {
		plain, err := NewSession(kernel)
		if err != nil {
			t.Fatal(err)
		}
		instr, err := NewSession(kernel, WithObserver(obs.NewObserver(obs.NewRegistry(), obs.NewTracer())))
		if err != nil {
			t.Fatal(err)
		}
		for _, pol := range []Policy{RR, GTO} {
			a, err := plain.Estimate(cfg, pol)
			if err != nil {
				t.Fatal(err)
			}
			b, err := instr.Estimate(cfg, pol)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s/%v: estimate changed under instrumentation:\nplain: %+v\nobserved: %+v", kernel, pol, a, b)
			}
		}
		ba, err := plain.EstimateBaseline(cfg, NaiveInterval)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := instr.EstimateBaseline(cfg, NaiveInterval)
		if err != nil {
			t.Fatal(err)
		}
		if ba != bb {
			t.Errorf("%s: baseline changed under instrumentation: %g vs %g", kernel, ba, bb)
		}
	}
}
