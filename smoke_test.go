package gpumech

import (
	"testing"
)

// TestEndToEndSmoke runs the full pipeline (trace -> cache sim -> model)
// and the timing oracle on a few kernels and reports the relative errors.
// It guards the repository's headline property: GPUMech must land within a
// sane error band of the detailed simulation.
func TestEndToEndSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end smoke is not short")
	}
	for _, name := range []string{"sdk_vectoradd", "sdk_blackscholes", "sdk_transpose_naive", "sdk_reduction"} {
		name := name
		t.Run(name, func(t *testing.T) {
			sess, err := NewSession(name, WithBlocks(96))
			if err != nil {
				t.Fatalf("NewSession: %v", err)
			}
			cfg := DefaultConfig()
			for _, pol := range []Policy{RR, GTO} {
				est, err := sess.Estimate(cfg, pol)
				if err != nil {
					t.Fatalf("Estimate(%v): %v", pol, err)
				}
				orc, err := sess.Oracle(cfg, pol)
				if err != nil {
					t.Fatalf("Oracle(%v): %v", pol, err)
				}
				errRel := RelativeError(est.CPI, orc.CPI)
				t.Logf("%s %v: model CPI %.3f oracle CPI %.3f err %.1f%% (mt %.3f rc %.3f) stack %v",
					name, pol, est.CPI, orc.CPI, errRel*100, est.MultithreadingCPI, est.ContentionCPI, est.Stack)
				if errRel > 1.5 {
					t.Errorf("%s %v: relative error %.0f%% is beyond sanity", name, pol, errRel*100)
				}
			}
		})
	}
}
