package gpumech

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gpumech/internal/check"
	"gpumech/internal/check/perf"
	"gpumech/internal/kernels"
)

// perfLintDir is the golden corpus for the static performance advisor:
// one .golden per paper kernel with the advisor's findings and summary
// line at the paper-default grid. Regenerate with
//
//	go test -run TestPerfLintGoldens -update
const perfLintDir = "testdata/perflint"

// perfAdviceFor runs the advisor exactly the way gpumech-lint perf
// does: paper-default grid, baseline config, seed-1 build.
func perfAdviceFor(t *testing.T, name string) *perf.Advice {
	t.Helper()
	k, err := kernels.Get(name)
	if err != nil {
		t.Fatalf("get %s: %v", name, err)
	}
	blocks := kernels.DefaultBlocks(k.WarpsPerBlock)
	l, err := k.Build(kernels.Scale{Blocks: blocks, Seed: 1})
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	ad, err := perf.Advise(l.Prog, perf.Options{Launch: check.LaunchInfo{
		Blocks:          l.Blocks,
		ThreadsPerBlock: l.ThreadsPerBlock,
		SharedBytes:     l.SharedBytes,
	}})
	if err != nil {
		t.Fatalf("advise %s: %v", name, err)
	}
	return ad
}

// TestPerfLintGoldens pins the advisor's output over the 40-kernel
// paper set and checks the advisor is infrastructure-clean: it must run
// without error on every kernel and never emit error-severity findings
// (advice is Info/Warning by construction; Errors are the verifier's).
func TestPerfLintGoldens(t *testing.T) {
	names := kernels.PaperNames()
	if len(names) != 40 {
		t.Fatalf("paper set has %d kernels, want 40", len(names))
	}
	seen := make(map[string]bool)
	for _, name := range names {
		ad := perfAdviceFor(t, name)
		for _, f := range ad.Findings {
			if f.Severity == check.Error {
				t.Errorf("%s: advisor emitted an error finding: %v", name, f)
			}
		}
		got := []byte(ad.Text())
		path := filepath.Join(perfLintDir, name+".golden")
		seen[name+".golden"] = true
		if *updateGolden {
			if err := os.MkdirAll(perfLintDir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update to regenerate)", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: advisor output differs from golden (run with -update to regenerate)\n--- got ---\n%s--- want ---\n%s",
				name, got, want)
		}
	}
	if *updateGolden {
		return
	}
	// Stray-file guard: every golden must belong to a current kernel, so
	// renames cannot leave stale expectations behind.
	entries, err := os.ReadDir(perfLintDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".golden") {
			continue // README, envelope.json
		}
		if !seen[e.Name()] {
			t.Errorf("stray golden file %s: no paper kernel produces it", e.Name())
		}
	}
}
