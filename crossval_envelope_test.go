package gpumech

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"gpumech/internal/accuracy"
	"gpumech/internal/config"
	"gpumech/internal/kernels"
)

// crossEnvelope is the pinned advisor-vs-model envelope: how often the
// static advisor's dominant-bottleneck label agrees with the interval
// model's CPI-stack attribution over the paper set plus 100 generated
// kernels, and where the two disagree most.
type crossEnvelope struct {
	N         int                  `json:"n"`
	Agreed    int                  `json:"agreed"`
	Agreement float64              `json:"agreement"`
	Confusion []accuracy.CrossCell `json:"confusion"`
	Worst     *accuracy.CrossCell  `json:"worstDisagreement,omitempty"`
}

func crossEnvelopePath() string {
	return filepath.Join("testdata", "perflint", "envelope.json")
}

// TestCrossValEnvelope pins the static advisor's attribution quality.
// Any change to the advisor's sketch, the affine analysis, the model, or
// the kernels that moves the agreement rate or the confusion matrix
// shows up here as a diff against testdata/perflint/envelope.json;
// deliberate changes re-bless with -update. The run is deterministic
// (integer counts, one exactly-representable ratio), so the comparison
// is exact.
func TestCrossValEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("full paper-set cross-validation is not a -short test")
	}
	if raceEnabled {
		t.Skip("full paper-set cross-validation is slow under the race detector; covered by the non-race job")
	}
	rep, err := accuracy.CrossValidate(accuracy.CrossOptions{
		Seed:     1,
		GenCount: 100,
		Policy:   config.GTO,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantN := len(kernels.PaperNames()) + 100
	if rep.N != wantN || len(rep.Results) != wantN {
		t.Fatalf("evaluated %d kernels, want %d (paper set + 100 generated)", rep.N, wantN)
	}

	got := crossEnvelope{
		N:         rep.N,
		Agreed:    rep.Agreed,
		Agreement: rep.Agreement,
		Confusion: rep.Confusion,
		Worst:     rep.Worst,
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(crossEnvelopePath()), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(crossEnvelopePath(), append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (agreement %d/%d = %.1f%%)", crossEnvelopePath(), got.Agreed, got.N, 100*got.Agreement)
		return
	}

	data, err := os.ReadFile(crossEnvelopePath())
	if err != nil {
		t.Fatalf("missing envelope file (generate with: go test -run TestCrossValEnvelope -update): %v", err)
	}
	var want crossEnvelope
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.MarshalIndent(got, "", "  ")
	wantJSON, _ := json.MarshalIndent(want, "", "  ")
	if string(gotJSON) != string(wantJSON) {
		t.Errorf("cross-validation envelope moved (re-bless with -update if deliberate)\n--- got ---\n%s\n--- want ---\n%s",
			gotJSON, wantJSON)
	}
}
