package gpumech

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"gpumech/internal/cache"
	"gpumech/internal/config"
	"gpumech/internal/core/model"
	"gpumech/internal/kernels"
)

// TestIntervalProfilesInvariantAcrossProfileKey proves the invariant the
// design-space memo rests on: configurations that agree on
// config.ProfileKey() but differ in warps, MSHRs and DRAM bandwidth
// produce identical per-warp interval profiles, so one trace and one
// cache simulation serve every such sweep point. A geometry change breaks
// the key and must produce a different profile.
func TestIntervalProfilesInvariantAcrossProfileKey(t *testing.T) {
	info, err := kernels.Get("rodinia_srad1")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := info.Trace(kernels.Scale{Blocks: 64, Seed: 1}, 128)
	if err != nil {
		t.Fatal(err)
	}

	base := config.Baseline()
	build := func(cfg config.Config) interface{} {
		prof, err := cache.Simulate(tr, cfg.ProfileConfig())
		if err != nil {
			t.Fatal(err)
		}
		tbl := model.BuildPCTable(tr.Prog, cfg, prof)
		profiles, err := model.BuildWarpProfiles(tr, cfg, tbl)
		if err != nil {
			t.Fatal(err)
		}
		return profiles
	}

	want := build(base)
	for name, cfg := range map[string]config.Config{
		"warps 8":           base.WithWarps(8),
		"warps 48":          base.WithWarps(48),
		"mshrs 256":         base.WithMSHRs(256),
		"bandwidth 64":      base.WithBandwidth(64),
		"all three at once": base.WithWarps(16).WithMSHRs(128).WithBandwidth(96),
	} {
		if cfg.ProfileKey() != base.ProfileKey() {
			t.Fatalf("%s: expected an equal ProfileKey", name)
		}
		if got := build(cfg); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: interval profiles differ despite equal ProfileKey", name)
		}
	}

	// A cache-geometry change breaks the key and the profiles.
	small := base
	small.L1SizeBytes = 16 * 1024
	if small.ProfileKey() == base.ProfileKey() {
		t.Fatal("L1 size change did not change the ProfileKey")
	}
	if got := build(small); reflect.DeepEqual(got, want) {
		t.Error("halving the L1 left the interval profiles unchanged; the key split is vacuous")
	}
}

// TestCacheProfileBytesInvariantAcrossSweptAxes is the byte-level form of
// the invariant: under the residency-canonicalized profiling
// configuration, randomly sampled sweep points that share the baseline's
// ProfileKey produce cache profiles whose per-PC statistics serialize to
// the very same bytes (encoding/json sorts map keys, so the comparison is
// exact, not structural). A geometry change must change the bytes.
func TestCacheProfileBytesInvariantAcrossSweptAxes(t *testing.T) {
	info, err := kernels.Get("rodinia_srad1")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := info.Trace(kernels.Scale{Blocks: 64, Seed: 1}, 128)
	if err != nil {
		t.Fatal(err)
	}

	base := config.Baseline()
	profileBytes := func(cfg config.Config) []byte {
		prof, err := cache.Simulate(tr, cfg.ProfileConfig())
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(prof.PCs)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	want := profileBytes(base)

	rng := rand.New(rand.NewSource(11))
	warps := []int{4, 8, 16, 32, 48, 64}
	for i := 0; i < 8; i++ {
		cfg := base.
			WithWarps(warps[rng.Intn(len(warps))]).
			WithMSHRs(8 << rng.Intn(6)).
			WithBandwidth(float64(32 * (1 + rng.Intn(8)))).
			WithSFUs(1 + rng.Intn(8))
		cfg.IssueWidth = 1 + rng.Intn(4)
		if cfg.ProfileKey() != base.ProfileKey() {
			t.Fatalf("sample %d: swept config changed the ProfileKey", i)
		}
		if got := profileBytes(cfg); !bytes.Equal(got, want) {
			t.Fatalf("sample %d: cache-profile bytes differ despite equal ProfileKey", i)
		}
	}

	small := base
	small.L1SizeBytes = 16 * 1024
	if got := profileBytes(small); bytes.Equal(got, want) {
		t.Error("halving the L1 left the cache-profile bytes unchanged; the key split is vacuous")
	}
}
