// Command gpumech-experiments regenerates the paper's evaluation figures
// (Figs. 4, 7, 11-16 and the Section VI-D speedup study) against the
// bundled kernels, printing text tables and optionally writing CSVs.
//
// Usage:
//
//	gpumech-experiments                  # every figure, all 40 kernels
//	gpumech-experiments -quick           # reduced kernels and sweeps
//	gpumech-experiments -fig fig11,fig13 # subset of figures
//	gpumech-experiments -csv out/        # also write out/<fig>.csv
//	gpumech-experiments -workers 8       # evaluate on 8 worker goroutines
//	gpumech-experiments -list            # list kernels and configuration
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gpumech"
	"gpumech/internal/experiments"
	"gpumech/internal/obs/obsflag"
)

func main() {
	figs := flag.String("fig", "", "comma-separated figure ids (default: all); see -list")
	kernelsFlag := flag.String("kernels", "", "comma-separated kernel subset (default: all)")
	quick := flag.Bool("quick", false, "reduced kernel set and sweep points")
	blocks := flag.Int("blocks", 0, "thread blocks per kernel (0 = 3x system occupancy)")
	seed := flag.Int64("seed", 1, "synthetic input seed")
	csvDir := flag.String("csv", "", "directory for CSV output (empty = none)")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GPUMECH_WORKERS or GOMAXPROCS; 1 = sequential)")
	verbose := flag.Bool("v", false, "log per-evaluation progress")
	list := flag.Bool("list", false, "list kernels, figures and the baseline configuration")
	ob := obsflag.Register(flag.CommandLine)
	flag.Parse()

	if *list {
		fmt.Println("baseline configuration (Table I):", gpumech.DefaultConfig())
		fmt.Println("\nfigures:", strings.Join(experiments.FigureIDs(), " "))
		fmt.Println("\nkernels:")
		for _, k := range gpumech.KernelInfos() {
			div := ""
			if k.ControlDiv {
				div = " [control-divergent]"
			}
			fmt.Printf("  %-28s %-8s memdiv=%-6s %s%s\n", k.Name, k.Suite, k.MemDivergence, k.Description, div)
		}
		return
	}

	observer, err := ob.Setup()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpumech-experiments:", err)
		os.Exit(1)
	}
	defer func() {
		if err := ob.Finish(); err != nil {
			fmt.Fprintln(os.Stderr, "gpumech-experiments:", err)
			os.Exit(1)
		}
	}()

	opt := experiments.Options{Quick: *quick, Blocks: *blocks, Seed: *seed, Workers: *workers, Obs: observer}
	if *kernelsFlag != "" {
		opt.Kernels = strings.Split(*kernelsFlag, ",")
	}
	if *verbose {
		opt.Log = os.Stderr
	}
	var ids []string
	if *figs != "" {
		ids = strings.Split(*figs, ",")
	}

	e := experiments.NewEvaluator(opt)
	results, err := e.Run(ids)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpumech-experiments:", err)
		os.Exit(1)
	}
	for _, f := range results {
		fmt.Println(f.Render())
		if *csvDir != "" {
			if err := f.WriteCSV(*csvDir); err != nil {
				fmt.Fprintln(os.Stderr, "gpumech-experiments:", err)
				os.Exit(1)
			}
		}
	}
}
