// Command gpumech-run evaluates the GPUMech model on one bundled kernel
// and prints the predicted CPI, its components, and the CPI stack;
// with -oracle it also runs the detailed timing simulation and reports
// the relative error.
//
// Usage:
//
//	gpumech-run -kernel rodinia_srad1 -policy gto -warps 48 -oracle
package main

import (
	"flag"
	"fmt"
	"os"

	"gpumech"
	"gpumech/internal/obs/obsflag"
	"gpumech/internal/runjson"
)

func main() {
	kernel := flag.String("kernel", "sdk_vectoradd", "kernel name (see gpumech-experiments -list)")
	policy := flag.String("policy", "rr", "warp scheduling policy: rr or gto")
	warps := flag.Int("warps", 0, "warps per core (0 = baseline 32)")
	mshrs := flag.Int("mshrs", 0, "MSHR entries (0 = baseline 32)")
	bw := flag.Float64("bw", 0, "DRAM bandwidth GB/s (0 = baseline 192)")
	blocks := flag.Int("blocks", 0, "thread blocks (0 = 3x occupancy)")
	level := flag.String("level", "full", "model level: mt, mshr, full")
	oracle := flag.Bool("oracle", false, "also run the detailed timing simulation")
	jsonOut := flag.Bool("json", false, "emit a single JSON object instead of text")
	ob := obsflag.Register(flag.CommandLine)
	flag.Parse()

	observer, err := ob.Setup()
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := ob.Finish(); err != nil {
			fail(err)
		}
	}()

	cfg := gpumech.DefaultConfig()
	if *warps > 0 {
		cfg = cfg.WithWarps(*warps)
	}
	if *mshrs > 0 {
		cfg = cfg.WithMSHRs(*mshrs)
	}
	if *bw > 0 {
		cfg = cfg.WithBandwidth(*bw)
	}
	pol, err := gpumech.ParsePolicy(*policy)
	if err != nil {
		fail(err)
	}
	lvl, err := gpumech.ParseLevel(*level)
	if err != nil {
		fail(err)
	}

	opts := []gpumech.Option{gpumech.WithObserver(observer)}
	if *blocks > 0 {
		opts = append(opts, gpumech.WithBlocks(*blocks))
	}
	sess, err := gpumech.NewSession(*kernel, opts...)
	if err != nil {
		fail(err)
	}
	est, err := sess.EstimateWith(cfg, pol, lvl, gpumech.Clustering)
	if err != nil {
		fail(err)
	}
	var orc *gpumech.OracleResult
	if *oracle {
		if orc, err = sess.Oracle(cfg, pol); err != nil {
			fail(err)
		}
	}

	if *jsonOut {
		if err := runjson.Encode(os.Stdout, runjson.Result(sess, pol, lvl, est, orc)); err != nil {
			fail(err)
		}
		return
	}

	fmt.Printf("kernel   %s (%d blocks, %d warps, %d instructions)\n",
		sess.Kernel(), sess.Blocks(), sess.Warps(), sess.TotalInsts())
	fmt.Printf("config   %s, %s scheduling\n", cfg, pol)
	fmt.Printf("model    CPI %.3f (IPC %.3f) = multithreading %.3f + contention %.3f\n",
		est.CPI, est.IPC, est.MultithreadingCPI, est.ContentionCPI)
	fmt.Printf("rep warp #%d: %d instructions, %d intervals\n", est.RepWarp, est.WarpInsts, est.Intervals)
	fmt.Printf("stack    %v\n", est.Stack)
	if orc != nil {
		fmt.Printf("oracle   CPI %.3f (%d cycles, %d instructions)\n", orc.CPI, orc.Cycles, orc.Insts)
		fmt.Printf("error    %.1f%%\n", gpumech.RelativeError(est.CPI, orc.CPI)*100)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gpumech-run:", err)
	os.Exit(1)
}
