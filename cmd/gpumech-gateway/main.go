// Command gpumech-gateway fronts a fleet of gpumech-serve backends with
// consistent-hash routing: every kernel×grid key is pinned to one node
// (rendezvous hashing), so each backend's session cache and profile
// store see every repeat of the keys it owns. Identical concurrent
// requests are coalesced into one backend call, connection-dead nodes
// are failed over to the key's next-preferred node with backoff, and
// the node set can be changed at runtime via POST /admin/nodes.
//
// Endpoints: POST /v1/evaluate and GET /v1/kernels (proxied), GET
// /metrics (gateway's own registry, Prometheus text), GET /healthz
// (gateway liveness), GET /readyz (503 until a backend is healthy),
// GET+POST /admin/nodes.
//
// Usage:
//
//	gpumech-gateway -addr 127.0.0.1:9090 \
//	    -nodes 127.0.0.1:8080,127.0.0.1:8081 -retries 1
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gpumech/internal/cluster"
	"gpumech/internal/obs/obsflag"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "listen address (port 0 picks a free port)")
	nodes := flag.String("nodes", "", "comma-separated gpumech-serve backends (host:port or http:// base URLs)")
	seed := flag.Uint64("seed", 0, "rendezvous hash seed; replicas that must route identically share it")
	retries := flag.Int("retries", 1, "extra backends to try after a connection error (0 = first choice only)")
	retryBackoff := flag.Duration("retry-backoff", 50*time.Millisecond, "pause before each failover attempt")
	healthInterval := flag.Duration("health-interval", 2*time.Second, "backend health probe period (0 disables)")
	timeout := flag.Duration("timeout", 60*time.Second, "per-backend-request timeout")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "shutdown grace period for in-flight requests")
	ob := obsflag.Register(flag.CommandLine)
	flag.Parse()

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))

	ob.RequireMetrics()
	observer, err := ob.Setup()
	if err != nil {
		fail(err)
	}

	var backends []string
	for _, n := range strings.Split(*nodes, ",") {
		if n = strings.TrimSpace(n); n != "" {
			backends = append(backends, n)
		}
	}
	if len(backends) == 0 {
		fail(fmt.Errorf("no backends: pass -nodes host:port[,host:port...]"))
	}

	gw, err := cluster.New(cluster.Config{
		Nodes:          backends,
		Seed:           *seed,
		Retries:        *retries,
		RetryBackoff:   *retryBackoff,
		HealthInterval: *healthInterval,
		Client:         &http.Client{Timeout: *timeout},
		Logger:         logger,
		Metrics:        observer.Metrics,
	})
	if err != nil {
		fail(err)
	}
	defer gw.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	// Script-friendly address handshake, same shape as gpumech-serve.
	fmt.Printf("gpumech-gateway: listening on %s\n", ln.Addr())
	logger.Info("listening", slog.String("addr", ln.Addr().String()),
		slog.Int("backends", len(backends)))

	httpSrv := &http.Server{
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ErrorLog:          slog.NewLogLogger(logger.Handler(), slog.LevelWarn),
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		stop()
		logger.Info("draining", slog.Duration("grace", *drainTimeout))
		shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			logger.Error("shutdown", slog.String("error", err.Error()))
		}
	case err := <-errCh:
		fail(err)
	}

	if err := ob.Finish(); err != nil {
		fail(err)
	}
	logger.Info("stopped")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gpumech-gateway:", err)
	os.Exit(1)
}
