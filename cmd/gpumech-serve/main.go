// Command gpumech-serve runs the GPUMech model as a long-lived HTTP
// daemon: POST /v1/evaluate answers with the same JSON document as
// `gpumech-run -json` (byte-identical for the same parameters), GET
// /v1/kernels lists the bundled kernels with per-kernel instruction
// counts (?version=1 for the original shape), POST /v1/sweeps starts an
// asynchronous design-space sweep (GET /v1/sweeps/{id} for progress and
// results, DELETE to cancel), and GET /metrics exposes the pipeline's
// observability registry — plus live Go-runtime telemetry — in
// Prometheus text exposition format. /healthz and /readyz serve
// liveness and readiness; SIGINT/SIGTERM trigger a graceful drain.
//
// Usage:
//
//	gpumech-serve -addr 127.0.0.1:8080 -max-inflight 64 -timeout 30s
//
// The shared observability flags still apply: -metrics dumps the final
// registry to stderr on exit, -metrics-out archives it as JSON,
// -trace-out records per-request span trees (diagnostic runs only — the
// tracer grows for its lifetime), -pprof serves live profiles.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gpumech/internal/kernels"
	"gpumech/internal/obs/obsflag"
	"gpumech/internal/obs/runtimecollector"
	"gpumech/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	workers := flag.Int("workers", 0, "worker goroutines per evaluation (0 = GPUMECH_WORKERS, then GOMAXPROCS)")
	maxInflight := flag.Int("max-inflight", 64, "concurrent evaluations before shedding load with 429")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request evaluation timeout")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "shutdown grace period for in-flight requests")
	maxSweepJobs := flag.Int("max-sweep-jobs", 32, "sweep job table size; finished jobs are evicted oldest-first when full")
	maxRunningSweeps := flag.Int("max-running-sweeps", 2, "concurrently evaluating sweeps; excess jobs wait queued")
	traceCache := flag.String("trace-cache", "", "directory of reusable columnar trace files; empty disables the cache")
	profileStore := flag.String("profile-store", "", "directory of the content-addressed profile store; warm profiles survive restarts and are shared across processes (empty disables)")
	flightRec := flag.Int("flightrec", 32, "flight recorder board size (N most recent + N slowest requests at /debug/flightrec); negative disables")
	sloP99 := flag.Duration("slo-p99", 0, "p99 request-latency objective reported by /readyz?verbose=1 (0 = no target)")
	ob := obsflag.Register(flag.CommandLine)
	flag.Parse()

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))

	// The /metrics endpoint always needs a registry, whatever the
	// -metrics flag says; the exit-time dumps still honour the flags.
	ob.RequireMetrics()
	observer, err := ob.Setup()
	if err != nil {
		fail(err)
	}

	// Static pre-flight: the daemon refuses to start if any bundled
	// kernel fails the checker, so a bad registry is caught at deploy
	// time rather than on the first request that touches it.
	if fs, err := kernels.VerifyAll(nil, kernels.Scale{Blocks: 2, Seed: 1}); err != nil {
		fail(err)
	} else if err := fs.Err(); err != nil {
		fail(fmt.Errorf("kernel pre-flight failed (run gpumech-lint kernels for details): %w", err))
	} else {
		logger.Info("kernel pre-flight clean", slog.Int("kernels", len(kernels.Names())))
	}

	srv := serve.New(serve.Config{
		Workers:            *workers,
		MaxInFlight:        *maxInflight,
		RequestTimeout:     *timeout,
		MaxSweepJobs:       *maxSweepJobs,
		MaxRunningSweeps:   *maxRunningSweeps,
		TraceCacheDir:      *traceCache,
		ProfileStoreDir:    *profileStore,
		FlightRecorderSize: *flightRec,
		SLOTargetP99:       *sloP99,
		Logger:             logger,
		Metrics:            observer.Metrics,
		Tracer:             observer.Tracer,
		Runtime:            runtimecollector.New(observer.Metrics),
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	// The plain stdout line is the script-friendly address handshake
	// (with -addr ending in :0 the kernel picks the port); the slog
	// record is for log pipelines.
	fmt.Printf("gpumech-serve: listening on %s\n", ln.Addr())
	logger.Info("listening", slog.String("addr", ln.Addr().String()))

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ErrorLog:          slog.NewLogLogger(logger.Handler(), slog.LevelWarn),
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		stop() // restore default handling: a second signal kills hard
		srv.BeginDrain()
		logger.Info("draining", slog.Duration("grace", *drainTimeout))
		shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			logger.Error("shutdown", slog.String("error", err.Error()))
		}
		// One last latency record in the logs: short-lived runs get their
		// p50/p99 even when nothing ever scraped /metrics.
		srv.LogSummary()
	case err := <-errCh:
		fail(err)
	}

	if err := ob.Finish(); err != nil {
		fail(err)
	}
	logger.Info("stopped")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gpumech-serve:", err)
	os.Exit(1)
}
