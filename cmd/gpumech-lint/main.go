// Command gpumech-lint runs the repository's static-verification layer
// (internal/check) from the command line:
//
//	gpumech-lint kernels [name ...]   verify bundled ISA kernels
//	gpumech-lint perf [name ...]      static performance advisor
//	gpumech-lint src [pattern ...]    run the determinism linter on Go source
//
// `kernels` with no names verifies the whole registry; `perf` with no
// names advises on the whole registry; `src` with no patterns lints
// ./... from the module root. Findings print one per line in the same
// format the emulator pre-flight uses; -json emits a schema-versioned
// JSON document instead ({"schema":1,"findings":[...]} for kernels and
// src, {"schema":1,"kernels":[...]} for perf).
//
// Exit codes are vet-style: 0 when no error-severity finding was
// reported, 1 when at least one was, 2 on usage or internal errors.
// Warnings and infos never affect the exit code (use -strict to make
// warnings count). The perf advisor only emits info- and
// warning-severity findings, so `perf` exits 0 unless -strict is set
// and a warning fired.
//
// Examples:
//
//	gpumech-lint kernels                      # the whole registry
//	gpumech-lint kernels rodinia_bfs sdk_scan # two kernels, text output
//	gpumech-lint -json kernels                # machine-readable findings
//	gpumech-lint -min-severity=info kernels   # show observations too
//	gpumech-lint perf sdk_transpose_naive     # bottleneck prediction
//	gpumech-lint -json perf                   # advisor reports as JSON
//	gpumech-lint src ./...                    # determinism lint, whole module
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"gpumech/internal/check"
	"gpumech/internal/check/perf"
	"gpumech/internal/kernels"
)

// lintSchema versions the -json output shape. Bump only on incompatible
// changes; additions keep the version.
const lintSchema = 1

func main() {
	jsonOut := flag.Bool("json", false, "emit a schema-versioned JSON document")
	minSev := flag.String("min-severity", "warning", "lowest severity to print: info, warning, error")
	strict := flag.Bool("strict", false, "exit 1 on warnings too, not just errors")
	blocks := flag.Int("blocks", 0, "grid size used to build kernels (0: 2 for kernels, the paper-default grid for perf)")
	seed := flag.Int64("seed", 1, "input seed used to build kernels")
	flag.Usage = usage
	flag.Parse()

	var show check.Severity
	if err := parseSeverity(*minSev, &show); err != nil {
		fatal(err)
	}

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	var fs check.Findings
	var err error
	switch args[0] {
	case "kernels":
		b := *blocks
		if b == 0 {
			b = 2
		}
		fs, err = kernels.VerifyAll(args[1:], kernels.Scale{Blocks: b, Seed: *seed})
	case "perf":
		runPerf(args[1:], *blocks, *seed, *jsonOut, *strict, show)
		return
	case "src":
		patterns := args[1:]
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		var root string
		root, err = moduleRoot()
		if err == nil {
			fs, err = check.LintSource(root, patterns)
		}
	default:
		fmt.Fprintf(os.Stderr, "gpumech-lint: unknown subcommand %q\n\n", args[0])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	var shown check.Findings
	for _, f := range fs {
		if f.Severity >= show {
			shown = append(shown, f)
		}
	}
	if *jsonOut {
		if shown == nil {
			shown = check.Findings{} // [] rather than null
		}
		writeJSON(struct {
			Schema   int            `json:"schema"`
			Findings check.Findings `json:"findings"`
		}{lintSchema, shown})
	} else {
		for _, f := range shown {
			fmt.Println(f)
		}
	}

	bad := fs.Count(check.Error)
	if *strict {
		bad += fs.Count(check.Warning)
	}
	if bad > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "gpumech-lint: %d blocking finding(s)\n", bad)
		}
		os.Exit(1)
	}
}

// runPerf runs the static performance advisor over the named kernels
// (all bundled kernels when names is empty) and renders each report.
// blocks 0 means the per-kernel paper-default grid — the same scale the
// testdata/perflint goldens pin.
func runPerf(names []string, blocks int, seed int64, jsonOut, strict bool, show check.Severity) {
	if len(names) == 0 {
		names = kernels.Names()
	}
	advs := make([]*perf.Advice, 0, len(names))
	warnings, errors := 0, 0
	for _, name := range names {
		info, err := kernels.Get(name)
		if err != nil {
			fatal(err)
		}
		b := blocks
		if b == 0 {
			b = kernels.DefaultBlocks(info.WarpsPerBlock)
		}
		l, err := info.Build(kernels.Scale{Blocks: b, Seed: seed})
		if err != nil {
			fatal(err)
		}
		ad, err := perf.Advise(l.Prog, perf.Options{Launch: check.LaunchInfo{
			Blocks:          l.Blocks,
			ThreadsPerBlock: l.ThreadsPerBlock,
			SharedBytes:     l.SharedBytes,
		}})
		if err != nil {
			fatal(fmt.Errorf("gpumech-lint: advising %s: %w", name, err))
		}
		warnings += ad.Findings.Count(check.Warning)
		errors += ad.Findings.Count(check.Error)
		if jsonOut {
			advs = append(advs, ad)
			continue
		}
		shown := *ad
		shown.Findings = nil
		for _, f := range ad.Findings {
			if f.Severity >= show {
				shown.Findings = append(shown.Findings, f)
			}
		}
		fmt.Print(shown.Text())
	}
	if jsonOut {
		writeJSON(struct {
			Schema  int            `json:"schema"`
			Kernels []*perf.Advice `json:"kernels"`
		}{lintSchema, advs})
	}
	bad := errors
	if strict {
		bad += warnings
	}
	if bad > 0 {
		if !jsonOut {
			fmt.Fprintf(os.Stderr, "gpumech-lint: %d blocking finding(s)\n", bad)
		}
		os.Exit(1)
	}
}

func writeJSON(doc any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
}

func parseSeverity(name string, out *check.Severity) error {
	switch name {
	case "info":
		*out = check.Info
	case "warning":
		*out = check.Warning
	case "error":
		*out = check.Error
	default:
		return fmt.Errorf("gpumech-lint: unknown severity %q (want info, warning, or error)", name)
	}
	return nil
}

// moduleRoot walks up from the working directory to the go.mod, so
// `gpumech-lint src` works from any subdirectory of the checkout.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("gpumech-lint: no go.mod above %s (run inside the checkout)", dir)
		}
		dir = parent
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: gpumech-lint [flags] kernels [name ...]
       gpumech-lint [flags] perf [name ...]
       gpumech-lint [flags] src [pattern ...]

Static verification for GPUMech: 'kernels' runs the CFG/dataflow checker
over bundled ISA programs; 'perf' runs the static performance advisor
(dominant-bottleneck prediction with actionable findings); 'src' runs
the determinism linter over the Go source tree. Exit code 1 means
blocking findings were reported (errors, plus warnings under -strict);
2 means a usage or internal error.

Flags:
`)
	flag.PrintDefaults()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
