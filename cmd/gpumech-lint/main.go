// Command gpumech-lint runs the repository's static-verification layer
// (internal/check) from the command line:
//
//	gpumech-lint kernels [name ...]   verify bundled ISA kernels
//	gpumech-lint src [pattern ...]    run the determinism linter on Go source
//
// `kernels` with no names verifies the whole registry; `src` with no
// patterns lints ./... from the module root. Findings print one per
// line in the same format the emulator pre-flight uses; -json emits a
// JSON array instead.
//
// Exit codes are vet-style: 0 when no error-severity finding was
// reported, 1 when at least one was, 2 on usage or internal errors.
// Warnings and infos never affect the exit code (use -strict to make
// warnings count).
//
// Examples:
//
//	gpumech-lint kernels                      # the whole registry
//	gpumech-lint kernels rodinia_bfs sdk_scan # two kernels, text output
//	gpumech-lint -json kernels                # machine-readable findings
//	gpumech-lint -min-severity=info kernels   # show observations too
//	gpumech-lint src ./...                    # determinism lint, whole module
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"gpumech/internal/check"
	"gpumech/internal/kernels"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	minSev := flag.String("min-severity", "warning", "lowest severity to print: info, warning, error")
	strict := flag.Bool("strict", false, "exit 1 on warnings too, not just errors")
	blocks := flag.Int("blocks", 2, "grid size used to build kernels for verification")
	seed := flag.Int64("seed", 1, "input seed used to build kernels for verification")
	flag.Usage = usage
	flag.Parse()

	var show check.Severity
	if err := parseSeverity(*minSev, &show); err != nil {
		fatal(err)
	}

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	var fs check.Findings
	var err error
	switch args[0] {
	case "kernels":
		fs, err = kernels.VerifyAll(args[1:], kernels.Scale{Blocks: *blocks, Seed: *seed})
	case "src":
		patterns := args[1:]
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		var root string
		root, err = moduleRoot()
		if err == nil {
			fs, err = check.LintSource(root, patterns)
		}
	default:
		fmt.Fprintf(os.Stderr, "gpumech-lint: unknown subcommand %q\n\n", args[0])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	var shown check.Findings
	for _, f := range fs {
		if f.Severity >= show {
			shown = append(shown, f)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if shown == nil {
			shown = check.Findings{} // [] rather than null
		}
		if err := enc.Encode(shown); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range shown {
			fmt.Println(f)
		}
	}

	bad := fs.Count(check.Error)
	if *strict {
		bad += fs.Count(check.Warning)
	}
	if bad > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "gpumech-lint: %d blocking finding(s)\n", bad)
		}
		os.Exit(1)
	}
}

func parseSeverity(name string, out *check.Severity) error {
	switch name {
	case "info":
		*out = check.Info
	case "warning":
		*out = check.Warning
	case "error":
		*out = check.Error
	default:
		return fmt.Errorf("gpumech-lint: unknown severity %q (want info, warning, or error)", name)
	}
	return nil
}

// moduleRoot walks up from the working directory to the go.mod, so
// `gpumech-lint src` works from any subdirectory of the checkout.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("gpumech-lint: no go.mod above %s (run inside the checkout)", dir)
		}
		dir = parent
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: gpumech-lint [flags] kernels [name ...]
       gpumech-lint [flags] src [pattern ...]

Static verification for GPUMech: 'kernels' runs the CFG/dataflow checker
over bundled ISA programs; 'src' runs the determinism linter over the Go
source tree. Exit code 1 means error-severity findings were reported.

Flags:
`)
	flag.PrintDefaults()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
