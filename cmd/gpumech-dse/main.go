// Command gpumech-dse runs a design-space exploration sweep from a
// declarative JSON specification: the cross-product of kernels,
// scheduling policies and hardware-parameter axes is evaluated with the
// GPUMech model, reusing one trace and one cache simulation per kernel
// wherever the cache geometry is unchanged, and the result — every
// point, the Pareto frontier and the best configuration per kernel — is
// printed as tables or as a stable JSON document.
//
// Usage:
//
//	gpumech-dse -spec sweep.json -workers 8 -json
//	gpumech-dse -spec - < sweep.json          # spec on stdin
//	gpumech-dse -spec sweep.json -checkpoint sweep.ckpt   # resumable
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"gpumech/internal/dse"
	"gpumech/internal/obs/obsflag"
	"gpumech/internal/runjson"
)

func main() {
	specPath := flag.String("spec", "", "sweep specification JSON file (\"-\" reads stdin)")
	workers := flag.Int("workers", 0, "evaluation workers (0 = GPUMECH_WORKERS, then GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "emit the full result as JSON instead of tables")
	checkpoint := flag.String("checkpoint", "", "checkpoint file: completed points are saved here and reused on restart")
	progress := flag.Bool("progress", false, "log one line per evaluated point to stderr")
	ob := obsflag.Register(flag.CommandLine)
	flag.Parse()

	if *specPath == "" {
		fail(fmt.Errorf("-spec is required (JSON file, or \"-\" for stdin)"))
	}
	var data []byte
	var err error
	if *specPath == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(*specPath)
	}
	if err != nil {
		fail(err)
	}
	var spec dse.Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		fail(fmt.Errorf("parsing spec: %w", err))
	}

	observer, err := ob.Setup()
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := ob.Finish(); err != nil {
			fail(err)
		}
	}()

	// Ctrl-C cancels the sweep between points; with -checkpoint the
	// completed points survive for the next invocation.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opt := dse.Options{
		Workers:    *workers,
		Obs:        observer,
		Checkpoint: *checkpoint,
	}
	if *progress {
		opt.Log = os.Stderr
	}
	res, err := dse.Run(ctx, spec, opt)
	if err != nil {
		fail(err)
	}

	if *jsonOut {
		if err := runjson.Encode(os.Stdout, res); err != nil {
			fail(err)
		}
		return
	}
	figs, err := res.Figures()
	if err != nil {
		fail(err)
	}
	for _, f := range figs {
		fmt.Println(f.Render())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gpumech-dse:", err)
	os.Exit(1)
}
