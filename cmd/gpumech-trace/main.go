// Command gpumech-trace inspects the input-collector products for one
// bundled kernel: the per-warp instruction trace, the cache-simulator
// per-PC profile, and the interval profile of a chosen warp.
//
// Usage:
//
//	gpumech-trace -kernel rodinia_bfs            # summary + per-PC profile
//	gpumech-trace -kernel rodinia_bfs -warp 3    # interval profile of warp 3
//	gpumech-trace -kernel rodinia_bfs -dump 40   # first 40 trace records
//
// The convert subcommand transcodes saved traces between the legacy gob
// format and the columnar v2 format (both gzip-compressed):
//
//	gpumech-trace convert -in old.trace -out new.trace                # to columnar
//	gpumech-trace convert -in new.trace -out old.trace -format gob    # back to gob
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gpumech/internal/cache"
	"gpumech/internal/config"
	"gpumech/internal/core/model"
	"gpumech/internal/kernels"
	"gpumech/internal/obs/obsflag"
	"gpumech/internal/trace"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "convert" {
		convert(os.Args[2:])
		return
	}
	kernel := flag.String("kernel", "sdk_vectoradd", "kernel name")
	blocks := flag.Int("blocks", 32, "thread blocks to trace")
	seed := flag.Int64("seed", 1, "synthetic input seed")
	warp := flag.Int("warp", -1, "print the interval profile of this warp index")
	dump := flag.Int("dump", 0, "dump the first N trace records of the chosen warp")
	disasm := flag.Bool("disasm", false, "print the kernel program listing")
	save := flag.String("save", "", "write the trace to this file")
	format := flag.String("format", "columnar", "format for -save: columnar (v2) or gob (legacy v1)")
	loadPath := flag.String("load", "", "load a previously saved trace instead of emulating")
	ob := obsflag.Register(flag.CommandLine)
	flag.Parse()

	observer, err := ob.Setup()
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := ob.Finish(); err != nil {
			fail(err)
		}
	}()

	cfg := config.Baseline()
	var tr *trace.Kernel
	if *loadPath != "" {
		var err error
		tr, err = trace.Load(*loadPath)
		if err != nil {
			fail(err)
		}
	} else {
		info, err := kernels.Get(*kernel)
		if err != nil {
			fail(err)
		}
		sp := observer.StartSpan("trace")
		sp.SetStr("kernel", *kernel)
		start := time.Now()
		tr, err = info.Trace(kernels.Scale{Blocks: *blocks, Seed: *seed}, cfg.L1LineBytes)
		if err != nil {
			sp.End()
			fail(err)
		}
		observer.ObserveSince("stage.trace.seconds", start)
		sp.SetInt("instructions", tr.TotalInsts())
		sp.End()
	}
	if *save != "" {
		if err := saveAs(tr, *save, *format); err != nil {
			fail(err)
		}
		fmt.Printf("saved %s trace to %s\n", *format, *save)
	}
	fmt.Printf("kernel %s: %d blocks x %d warps, %d static instructions, %d dynamic warp-instructions\n",
		tr.Name, tr.Blocks, tr.WarpsPerBlock, len(tr.Prog.Instrs), tr.TotalInsts())
	if *disasm {
		fmt.Println()
		fmt.Print(tr.Prog.Disassemble())
	}

	csp := observer.StartSpan("cache-sim")
	start := time.Now()
	prof, err := cache.Simulate(tr, cfg)
	if err != nil {
		csp.End()
		fail(err)
	}
	observer.ObserveSince("stage.cachesim.seconds", start)
	csp.End()
	fmt.Println("\nper-PC cache profile (loads classified by worst request):")
	fmt.Print(prof.String())
	fmt.Printf("avg miss latency: %.1f cycles\n", prof.AvgMissLatency())

	w := *warp
	if w < 0 && *dump > 0 {
		w = 0
	}
	if w >= 0 {
		if w >= len(tr.Warps) {
			fail(fmt.Errorf("warp %d out of range (%d warps)", w, len(tr.Warps)))
		}
		tbl := model.BuildPCTable(tr.Prog, cfg, prof)
		isp := observer.StartSpan("interval-profiling")
		start := time.Now()
		profiles, err := model.BuildWarpProfiles(tr, cfg, tbl)
		if err != nil {
			isp.End()
			fail(err)
		}
		observer.ObserveSince("stage.interval_profiling.seconds", start)
		isp.SetInt("warps", int64(len(profiles)))
		isp.End()
		p := profiles[w]
		fmt.Printf("\nwarp %d interval profile: %d instructions, %d intervals, %.1f stall cycles, warp_perf %.4f\n",
			w, p.Insts, len(p.Intervals), p.Stall, p.WarpPerf())
		for i, iv := range p.Intervals {
			if i >= 20 {
				fmt.Printf("  ... (%d more intervals)\n", len(p.Intervals)-20)
				break
			}
			fmt.Printf("  interval %3d: %3d insts, %7.1f stall (cause pc %d, %s)\n",
				i, iv.Insts, iv.StallCycles, iv.CausePC, iv.CauseClass)
		}
		if *dump > 0 {
			fmt.Printf("\nfirst %d records of warp %d:\n", *dump, w)
			for i, r := range tr.Warps[w].Recs {
				if i >= *dump {
					break
				}
				fmt.Printf("  %4d: pc %3d %-6s mask %08x reqs %d\n", i, r.PC, r.Op, r.Mask, r.NumReqs())
			}
		}
	}
}

// convert transcodes a saved trace file between formats. The input format
// is sniffed from the file; -format picks the output encoding.
func convert(args []string) {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("in", "", "input trace file (format auto-detected)")
	out := fs.String("out", "", "output trace file")
	format := fs.String("format", "columnar", "output format: columnar (v2) or gob (legacy v1)")
	if err := fs.Parse(args); err != nil {
		fail(err)
	}
	if *in == "" || *out == "" {
		fail(fmt.Errorf("convert: -in and -out are required"))
	}
	tr, err := trace.LoadStream(*in)
	if err != nil {
		fail(err)
	}
	if err := saveAs(tr, *out, *format); err != nil {
		fail(err)
	}
	fmt.Printf("converted %s -> %s (%s, %d warps, %d warp-instructions)\n",
		*in, *out, *format, len(tr.Warps), tr.TotalInsts())
}

func saveAs(tr *trace.Kernel, path, format string) error {
	switch format {
	case "columnar":
		return tr.Save(path)
	case "gob":
		return tr.SaveLegacy(path)
	}
	return fmt.Errorf("unknown trace format %q (want columnar or gob)", format)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gpumech-trace:", err)
	os.Exit(1)
}
