// Command gpumech-cpistack renders GPUMech CPI stacks (Section VII of the
// paper) as stacked ASCII bars for one kernel across warp counts — the
// paper's scaling-bottleneck visualization.
//
// Usage:
//
//	gpumech-cpistack -kernel rodinia_kmeans_invert -warps 8,16,32,48
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gpumech"
	"gpumech/internal/obs/obsflag"
	"gpumech/internal/report"
)

func main() {
	kernel := flag.String("kernel", "rodinia_cfd_compute_flux", "kernel name")
	warpsCSV := flag.String("warps", "8,16,32,48", "comma-separated warps-per-core values")
	policy := flag.String("policy", "rr", "scheduling policy: rr or gto")
	oracle := flag.Bool("oracle", false, "also run the detailed simulation per point")
	ob := obsflag.Register(flag.CommandLine)
	flag.Parse()

	observer, err := ob.Setup()
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := ob.Finish(); err != nil {
			fail(err)
		}
	}()

	pol := gpumech.RR
	if *policy == "gto" {
		pol = gpumech.GTO
	}
	var warps []int
	for _, s := range strings.Split(*warpsCSV, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fail(err)
		}
		warps = append(warps, w)
	}

	sess, err := gpumech.NewSession(*kernel, gpumech.WithObserver(observer))
	if err != nil {
		fail(err)
	}
	fmt.Printf("CPI stacks for %s (%s scheduling)\n", sess.Kernel(), pol)
	fmt.Println("legend: B=BASE D=DEP 1=L1 2=L2 R=DRAM M=MSHR Q=QUEUE S=SFU")

	runes := []rune{'B', 'D', '1', '2', 'R', 'M', 'Q', 'S'}
	type point struct {
		warps  int
		est    *gpumech.Estimate
		oracle float64
	}
	var pts []point
	maxCPI := 0.0
	for _, w := range warps {
		cfg := gpumech.DefaultConfig().WithWarps(w)
		est, err := sess.Estimate(cfg, pol)
		if err != nil {
			fail(err)
		}
		p := point{warps: w, est: est}
		if *oracle {
			orc, err := sess.Oracle(cfg, pol)
			if err != nil {
				fail(err)
			}
			p.oracle = orc.CPI
		}
		if est.CPI > maxCPI {
			maxCPI = est.CPI
		}
		pts = append(pts, p)
	}
	for _, p := range pts {
		vals := make([]float64, len(p.est.Stack))
		for i, v := range p.est.Stack {
			vals[i] = v
		}
		line := fmt.Sprintf("%2d warps |%s| CPI %.3f", p.warps, report.StackedBar(vals, runes, maxCPI, 60), p.est.CPI)
		if *oracle {
			line += fmt.Sprintf("  (oracle %.3f, err %.1f%%)", p.oracle, gpumech.RelativeError(p.est.CPI, p.oracle)*100)
		}
		fmt.Println(line)
	}
	fmt.Println()
	for _, p := range pts {
		fmt.Printf("%2d warps: %v\n", p.warps, p.est.Stack)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gpumech-cpistack:", err)
	os.Exit(1)
}
