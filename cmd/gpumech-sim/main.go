// Command gpumech-sim runs the detailed cycle-level timing simulator (the
// validation oracle) on one bundled kernel and reports CPI, cycles, and
// per-core statistics.
//
// Usage:
//
//	gpumech-sim -kernel parboil_spmv -policy gto -warps 16
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gpumech"
	"gpumech/internal/obs/obsflag"
)

func main() {
	kernel := flag.String("kernel", "sdk_vectoradd", "kernel name")
	policy := flag.String("policy", "rr", "warp scheduling policy: rr or gto")
	warps := flag.Int("warps", 0, "warps per core (0 = baseline)")
	mshrs := flag.Int("mshrs", 0, "MSHR entries (0 = baseline)")
	bw := flag.Float64("bw", 0, "DRAM bandwidth GB/s (0 = baseline)")
	blocks := flag.Int("blocks", 0, "thread blocks (0 = 3x occupancy)")
	ob := obsflag.Register(flag.CommandLine)
	flag.Parse()

	observer, err := ob.Setup()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpumech-sim:", err)
		os.Exit(1)
	}
	defer func() {
		if err := ob.Finish(); err != nil {
			fmt.Fprintln(os.Stderr, "gpumech-sim:", err)
			os.Exit(1)
		}
	}()

	cfg := gpumech.DefaultConfig()
	if *warps > 0 {
		cfg = cfg.WithWarps(*warps)
	}
	if *mshrs > 0 {
		cfg = cfg.WithMSHRs(*mshrs)
	}
	if *bw > 0 {
		cfg = cfg.WithBandwidth(*bw)
	}
	pol := gpumech.RR
	if *policy == "gto" {
		pol = gpumech.GTO
	}

	opts := []gpumech.Option{gpumech.WithObserver(observer)}
	if *blocks > 0 {
		opts = append(opts, gpumech.WithBlocks(*blocks))
	}
	sess, err := gpumech.NewSession(*kernel, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpumech-sim:", err)
		os.Exit(1)
	}
	fmt.Printf("kernel  %s (%d warps, %d instructions)\n", sess.Kernel(), sess.Warps(), sess.TotalInsts())
	fmt.Printf("config  %s, %s scheduling\n", cfg, pol)
	start := time.Now()
	orc, err := sess.Oracle(cfg, pol)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpumech-sim:", err)
		os.Exit(1)
	}
	fmt.Printf("result  CPI %.3f  IPC %.3f  cycles %d  instructions %d  (%.2fs wall)\n",
		orc.CPI, orc.IPC, orc.Cycles, orc.Insts, time.Since(start).Seconds())
	fmt.Printf("stalls ")
	for _, k := range []string{"issue", "compute-dep", "memory-dep", "mshr", "dram-queue", "barrier", "drain"} {
		fmt.Printf(" %s=%.1f%%", k, orc.StallBreakdown[k]*100)
	}
	fmt.Println()
}
