// Command gpumech-diff runs the differential-testing harness: the
// analytical model against the cycle-level timing simulator over the
// paper's benchmark kernels, both scheduling policies, a hardware
// configuration axis, and a stream of seeded generated kernels — and
// reports per-policy error statistics, error CDFs, and the worst
// accuracy cliffs with their stall-cause attribution.
//
// Usage:
//
//	gpumech-diff -seed 1 -count 200                 # tables to stdout
//	gpumech-diff -seed 1 -count 50 -json            # full JSON report
//	gpumech-diff -kernels none -count 500 -budget 200 -json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gpumech/internal/accuracy"
	"gpumech/internal/config"
	"gpumech/internal/obs/obsflag"
	"gpumech/internal/runjson"
)

func main() {
	seed := flag.Int64("seed", 1, "seed for kernel inputs and the generator stream")
	count := flag.Int("count", 0, "number of generated kernels to append to the sweep")
	jsonOut := flag.Bool("json", false, "emit the full report as JSON instead of tables")
	budget := flag.Int("budget", 0, "cap on evaluated points, applied to the plan in deterministic order (0 = unlimited)")
	kernelList := flag.String("kernels", "", "comma-separated registry kernels (empty = the 40-kernel paper set, \"none\" = generated kernels only)")
	policyList := flag.String("policies", "", "comma-separated scheduling policies: rr, gto (empty = both)")
	blocks := flag.Int("blocks", 0, "grid size for registry kernels (0 = paper scale, >=3x occupancy)")
	genBlocks := flag.Int("gen-blocks", 0, "grid override for generated kernels (0 = generator default, >=3x occupancy)")
	workers := flag.Int("workers", 0, "evaluation workers (0 = GPUMECH_WORKERS, then GOMAXPROCS)")
	ob := obsflag.Register(flag.CommandLine)
	flag.Parse()

	opt := accuracy.Options{
		Seed:      *seed,
		GenCount:  *count,
		GenBlocks: *genBlocks,
		Budget:    *budget,
		Blocks:    *blocks,
		Workers:   *workers,
	}
	switch *kernelList {
	case "":
	case "none":
		opt.Kernels = []string{}
	default:
		opt.Kernels = strings.Split(*kernelList, ",")
	}
	for _, p := range strings.Split(*policyList, ",") {
		switch strings.TrimSpace(p) {
		case "":
		case "rr":
			opt.Policies = append(opt.Policies, config.RR)
		case "gto":
			opt.Policies = append(opt.Policies, config.GTO)
		default:
			fail(fmt.Errorf("unknown policy %q (want rr or gto)", p))
		}
	}

	observer, err := ob.Setup()
	if err != nil {
		fail(err)
	}
	opt.Obs = observer
	defer func() {
		if err := ob.Finish(); err != nil {
			fail(err)
		}
	}()

	rep, err := accuracy.Run(opt)
	if err != nil {
		fail(err)
	}

	if *jsonOut {
		if err := runjson.Encode(os.Stdout, rep); err != nil {
			fail(err)
		}
		return
	}
	printTables(rep)
}

// printTables renders the human view: one summary block per policy and
// the worst cliffs with their attribution.
func printTables(rep *accuracy.Report) {
	fmt.Printf("gpumech-diff: %d points (%d planned, %d truncated), seed %d, %d generated kernels\n",
		rep.EvaluatedPoints, rep.PlannedPoints, rep.TruncatedPoints, rep.Seed, rep.GenCount)
	fmt.Printf("axes: %s\n\n", strings.Join(rep.Axes, ", "))
	for _, s := range rep.Summaries {
		fmt.Printf("policy %s (%d points): mean %.2f%%  median %.2f%%  max %.2f%%  <10%% %.0f%%  <30%% %.0f%%\n",
			s.Policy, s.N, 100*s.MeanRelErr, 100*s.MedianRelErr, 100*s.MaxRelErr,
			100*s.FracBelow10, 100*s.FracBelow30)
		fmt.Print("  cdf:")
		for _, b := range s.CDF {
			fmt.Printf("  %s=%d", b.Label, b.Count)
		}
		fmt.Println()
		for i, w := range s.Worst {
			fmt.Printf("  worst[%d]: %-28s %-10s model %8.3f  oracle %8.3f  err %6.2f%%  dominant %s\n",
				i, w.Kernel, w.Axis, w.ModelCPI, w.OracleCPI, 100*w.RelErr, w.DominantStall)
		}
		fmt.Println()
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gpumech-diff:", err)
	os.Exit(1)
}
