package main

// The planning and statistics half of gpumech-bench, kept free of I/O
// and wall-clock reads so the whole workload is a pure function of its
// inputs: same seed and kernel list, same request sequence, bit for
// bit. Execution timing can jitter, but never the mix — that is the
// property the determinism test and the CI gate pin.

import (
	"math"
	"math/rand"
	"sort"
	"strings"

	"gpumech/internal/obs/promtext"
)

// benchReq is one planned request against POST /v1/evaluate.
type benchReq struct {
	Kernel string
	Policy string
	Warps  int
	Blocks int // 0 = server default grid; cold requests pin a unique grid
	Cold   bool
}

var (
	warpChoices   = [...]int{8, 16, 24, 32}
	policyChoices = [...]string{"gto", "rr"}
)

// Cold-phase grids start at coldBlocksBase — above every default grid,
// so no cold request can share a session-cache key with a warm one —
// and step by coldBlocksStep. The step keeps block counts multiples of
// 8: every bundled kernel's grid validates when blocks*warpsPerBlock*32
// is a multiple of the 256-wide tile, and warpsPerBlock >= 1, so 8
// divides out the worst case.
const (
	coldBlocksBase = 64
	coldBlocksStep = 8
)

// planWorkload builds the full request sequence up front. The cold
// phase deals one never-repeated (kernel, blocks) pair per request —
// each must miss the server's session cache and pay for tracing and
// cache simulation — cycling kernels round-robin so every kernel gets
// cold coverage. The warm phase draws kernel, policy and warp count
// from a seeded generator and leaves the grid at the server default,
// so repeats of a kernel hit the session cache.
//
// The kernel list is sorted before any draw: callers may pass it in
// any order without changing the plan.
func planWorkload(seed int64, kernels []string, cold, warm int) []benchReq {
	ks := append([]string(nil), kernels...)
	sort.Strings(ks)
	rng := rand.New(rand.NewSource(seed))
	plan := make([]benchReq, 0, cold+warm)
	for i := 0; i < cold; i++ {
		plan = append(plan, benchReq{
			Kernel: ks[i%len(ks)],
			Policy: policyChoices[i%len(policyChoices)],
			Warps:  warpChoices[i%len(warpChoices)],
			// Session keys are (kernel, blocks), so the grid only has to
			// be unique per kernel — reusing each size across the whole
			// round keeps cold grids small however long the phase runs.
			Blocks: coldBlocksBase + coldBlocksStep*(i/len(ks)),
			Cold:   true,
		})
	}
	for i := 0; i < warm; i++ {
		plan = append(plan, benchReq{
			Kernel: ks[rng.Intn(len(ks))],
			Policy: policyChoices[rng.Intn(len(policyChoices))],
			Warps:  warpChoices[rng.Intn(len(warpChoices))],
		})
	}
	return plan
}

// kernelMix counts requests per kernel; the report publishes it so two
// runs of the same seed can be diffed for identical mixes.
func kernelMix(plan []benchReq) map[string]int {
	mix := make(map[string]int)
	for _, r := range plan {
		mix[r.Kernel]++
	}
	return mix
}

// latencyStats is the summary block the report emits per phase.
type latencyStats struct {
	Count       int     `json:"count"`
	P50Seconds  float64 `json:"p50Seconds"`
	P90Seconds  float64 `json:"p90Seconds"`
	P99Seconds  float64 `json:"p99Seconds"`
	MaxSeconds  float64 `json:"maxSeconds"`
	MeanSeconds float64 `json:"meanSeconds"`
}

// summarize computes exact (not histogram-estimated) order statistics
// from the recorded per-request latencies, using the nearest-rank
// definition: P(q) is the smallest observation with at least q*n
// observations at or below it.
func summarize(seconds []float64) latencyStats {
	n := len(seconds)
	if n == 0 {
		return latencyStats{}
	}
	s := append([]float64(nil), seconds...)
	sort.Float64s(s)
	q := func(p float64) float64 {
		idx := int(math.Ceil(p*float64(n))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			idx = n - 1
		}
		return s[idx]
	}
	var sum float64
	for _, v := range s {
		sum += v
	}
	return latencyStats{
		Count:       n,
		P50Seconds:  q(0.50),
		P90Seconds:  q(0.90),
		P99Seconds:  q(0.99),
		MaxSeconds:  s[n-1],
		MeanSeconds: sum / float64(n),
	}
}

// stageMean is one row of the per-stage breakdown: how many times the
// stage ran during the bench window and its mean duration.
type stageMean struct {
	Count       float64 `json:"count"`
	MeanSeconds float64 `json:"meanSeconds"`
}

// gatewaySection reports what the gateway did during the bench window,
// from diffing its cluster.* counters: how much traffic it proxied, how
// much it coalesced or failed over, and how the keys spread over the
// backends (the per-node request deltas CI diffs across runs to pin
// routing determinism).
type gatewaySection struct {
	Requests  float64 `json:"requests"`
	Coalesced float64 `json:"coalesced"`
	Failover  float64 `json:"failover"`
	NoBackend float64 `json:"noBackend"`

	// NodeRequests is the per-backend request delta. Informative, not a
	// determinism gate: coalescing collapses concurrent duplicates, so
	// the counts wander with timing even under a pinned seed.
	NodeRequests map[string]float64 `json:"nodeRequests,omitempty"`

	// Routes maps each routing key ("kernel|blocks") to the backend
	// that served it, from the X-Gpumech-Node response header. THIS is
	// the determinism gate: a seeded gateway must produce the identical
	// mapping on every run, coalescing or not.
	Routes map[string]string `json:"routes,omitempty"`
}

// storeSection reports profile-store activity during the bench window —
// a store-warm daemon shows hits with zero puts; a cold one the reverse.
type storeSection struct {
	Hits    float64 `json:"hits"`
	Misses  float64 `json:"misses"`
	Puts    float64 `json:"puts"`
	Corrupt float64 `json:"corrupt"`
}

// sampleValue finds one sample by exposition name; absent means 0.
func sampleValue(samples []promtext.Sample, name string) (float64, bool) {
	for _, s := range samples {
		if s.Name == name {
			return s.Value, true
		}
	}
	return 0, false
}

// gatewayStats diffs the gateway counters across the bench window and
// folds in the per-key routing observed from response headers. Nil when
// the target exposes no cluster counters — i.e. it is a plain
// gpumech-serve.
func gatewayStats(before, after []promtext.Sample, results []outcome) *gatewaySection {
	if _, ok := sampleValue(after, "gpumech_cluster_requests_total"); !ok {
		return nil
	}
	delta := func(name string) float64 {
		b, _ := sampleValue(before, name)
		a, _ := sampleValue(after, name)
		return a - b
	}
	g := &gatewaySection{
		Requests:  delta("gpumech_cluster_requests_total"),
		Coalesced: delta("gpumech_cluster_coalesced_total"),
		Failover:  delta("gpumech_cluster_failover_total"),
		NoBackend: delta("gpumech_cluster_no_backend_total"),
	}
	const pre, suf = "gpumech_cluster_node_", "_requests_total"
	for _, s := range after {
		if strings.HasPrefix(s.Name, pre) && strings.HasSuffix(s.Name, suf) {
			node := strings.TrimSuffix(strings.TrimPrefix(s.Name, pre), suf)
			if g.NodeRequests == nil {
				g.NodeRequests = make(map[string]float64)
			}
			g.NodeRequests[node] = delta(s.Name)
		}
	}
	for _, o := range results {
		if o.node == "" {
			continue
		}
		if g.Routes == nil {
			g.Routes = make(map[string]string)
		}
		g.Routes[o.route] = o.node
	}
	return g
}

// storeStats diffs the profile-store counters across the bench window.
// Nil when the target has no store configured (it then registers none
// of the store.* counters).
func storeStats(before, after []promtext.Sample) *storeSection {
	names := [...]string{"gpumech_store_hits_total", "gpumech_store_misses_total",
		"gpumech_store_puts_total", "gpumech_store_corrupt_total"}
	present := false
	for _, n := range names {
		if _, ok := sampleValue(after, n); ok {
			present = true
			break
		}
	}
	if !present {
		return nil
	}
	delta := func(name string) float64 {
		b, _ := sampleValue(before, name)
		a, _ := sampleValue(after, name)
		return a - b
	}
	return &storeSection{
		Hits:    delta(names[0]),
		Misses:  delta(names[1]),
		Puts:    delta(names[2]),
		Corrupt: delta(names[3]),
	}
}

// serveStages are the pipeline stages gpumech-serve times individually.
var serveStages = [...]string{"decode", "session", "estimate", "encode"}

// stageMeans attributes server-side time per pipeline stage by diffing
// two /metrics scrapes taken around the bench window: the delta of each
// gpumech_serve_stage_*_seconds _sum over its _count delta is the mean
// stage latency caused by this run, unpolluted by whatever the server
// did before the bench connected.
func stageMeans(before, after []promtext.Sample) map[string]stageMean {
	get := func(samples []promtext.Sample, name string) float64 {
		for _, s := range samples {
			if s.Name == name {
				return s.Value
			}
		}
		return 0
	}
	out := make(map[string]stageMean, len(serveStages))
	for _, st := range serveStages {
		base := "gpumech_serve_stage_" + st + "_seconds"
		dc := get(after, base+"_count") - get(before, base+"_count")
		ds := get(after, base+"_sum") - get(before, base+"_sum")
		m := stageMean{Count: dc}
		if dc > 0 {
			m.MeanSeconds = ds / dc
		}
		out[st] = m
	}
	return out
}
