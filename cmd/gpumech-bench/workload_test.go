package main

import (
	"math"
	"reflect"
	"testing"
	"time"

	"gpumech/internal/obs/promtext"
)

// TestPlanDeterministic is the bench's acceptance gate: the workload is
// a pure function of (seed, kernel list) — identical across runs and
// across kernel-list orderings, different under a different seed.
func TestPlanDeterministic(t *testing.T) {
	ks := []string{"sdk_vectoradd", "micro_copy", "rodinia_bfs"}
	a := planWorkload(7, ks, 4, 200)
	b := planWorkload(7, ks, 4, 200)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	shuffled := []string{"rodinia_bfs", "sdk_vectoradd", "micro_copy"}
	if c := planWorkload(7, shuffled, 4, 200); !reflect.DeepEqual(a, c) {
		t.Fatal("kernel-list order changed the plan")
	}
	if d := planWorkload(8, ks, 4, 200); reflect.DeepEqual(a, d) {
		t.Fatal("different seeds produced the identical plan")
	}
}

// TestPlanPhases pins the phase structure: cold requests come first,
// each with a unique never-default grid; warm requests leave the grid
// at the server default.
func TestPlanPhases(t *testing.T) {
	ks := []string{"a", "b"}
	plan := planWorkload(1, ks, 5, 10)
	if len(plan) != 15 {
		t.Fatalf("plan length %d, want 15", len(plan))
	}
	seen := map[[2]interface{}]bool{}
	perKernel := map[string]int{}
	for i, r := range plan[:5] {
		if !r.Cold {
			t.Fatalf("request %d in cold slice not marked cold", i)
		}
		if r.Blocks < coldBlocksBase {
			t.Fatalf("cold request %d blocks %d below base", i, r.Blocks)
		}
		if r.Blocks%8 != 0 {
			t.Fatalf("cold request %d blocks %d not a multiple of 8 (256-wide tiles require it)", i, r.Blocks)
		}
		key := [2]interface{}{r.Kernel, r.Blocks}
		if seen[key] {
			t.Fatalf("cold request %d repeats session key %v", i, key)
		}
		seen[key] = true
		perKernel[r.Kernel]++
	}
	for _, k := range ks {
		if perKernel[k] == 0 {
			t.Errorf("cold phase never touched kernel %s", k)
		}
	}
	for i, r := range plan[5:] {
		if r.Cold || r.Blocks != 0 {
			t.Fatalf("warm request %d wrong: %+v", i, r)
		}
		if r.Warps < 8 || r.Warps > 32 {
			t.Fatalf("warm request %d warps %d outside choice set", i, r.Warps)
		}
	}
	mix := kernelMix(plan)
	total := 0
	for _, k := range ks {
		total += mix[k]
	}
	if total != len(plan) {
		t.Fatalf("mix sums to %d, want %d", total, len(plan))
	}
}

// TestSummarize checks the nearest-rank order statistics.
func TestSummarize(t *testing.T) {
	if s := summarize(nil); s.Count != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
	var xs []float64
	for i := 1; i <= 100; i++ {
		xs = append(xs, float64(i))
	}
	s := summarize(xs)
	want := latencyStats{Count: 100, P50Seconds: 50, P90Seconds: 90, P99Seconds: 99, MaxSeconds: 100, MeanSeconds: 50.5}
	if s != want {
		t.Fatalf("summarize(1..100) = %+v, want %+v", s, want)
	}
	one := summarize([]float64{3})
	if one.P50Seconds != 3 || one.P99Seconds != 3 || one.MaxSeconds != 3 {
		t.Fatalf("single-element summary: %+v", one)
	}
}

// TestStageMeans diffs synthetic before/after scrapes.
func TestStageMeans(t *testing.T) {
	before := []promtext.Sample{
		{Name: "gpumech_serve_stage_decode_seconds_sum", Value: 1.0},
		{Name: "gpumech_serve_stage_decode_seconds_count", Value: 10},
	}
	after := []promtext.Sample{
		{Name: "gpumech_serve_stage_decode_seconds_sum", Value: 3.0},
		{Name: "gpumech_serve_stage_decode_seconds_count", Value: 20},
		{Name: "gpumech_serve_stage_estimate_seconds_sum", Value: 5.0},
		{Name: "gpumech_serve_stage_estimate_seconds_count", Value: 5},
	}
	m := stageMeans(before, after)
	if got := m["decode"]; got.Count != 10 || math.Abs(got.MeanSeconds-0.2) > 1e-12 {
		t.Fatalf("decode mean: %+v", got)
	}
	if got := m["estimate"]; got.Count != 5 || math.Abs(got.MeanSeconds-1.0) > 1e-12 {
		t.Fatalf("estimate mean: %+v", got)
	}
	// A stage that never ran must report zero, not NaN.
	if got := m["session"]; got.Count != 0 || got.MeanSeconds != 0 {
		t.Fatalf("idle stage: %+v", got)
	}
}

// TestAssemble exercises the report math on synthetic outcomes.
func TestAssemble(t *testing.T) {
	plan := planWorkload(1, []string{"a"}, 1, 3)
	results := []outcome{
		{seconds: 0.5, status: 200, cold: true},
		{seconds: 0.01, status: 200},
		{seconds: 0.02, status: 429},
		{seconds: 0.03, status: 500},
	}
	rep := assemble(1, 25, 2*time.Second, 4, []string{"a"}, plan, results, time.Second, nil, nil)
	if rep.SchemaVersion != 2 || rep.Workload.ColdRequests != 1 || rep.Workload.WarmRequests != 3 {
		t.Fatalf("report shape: %+v", rep)
	}
	if rep.Gateway != nil || rep.Store != nil {
		t.Fatalf("plain serve target grew gateway/store sections: %+v", rep)
	}
	if rep.Shed429 != 1 || rep.Errors != 1 {
		t.Fatalf("error accounting: shed=%d errors=%d", rep.Shed429, rep.Errors)
	}
	if rep.Cold.Count != 1 || rep.Warm.Count != 3 || rep.Overall.Count != 4 {
		t.Fatalf("phase counts: %+v", rep)
	}
	if math.Abs(rep.RPSAchieved-3.0) > 1e-12 {
		t.Fatalf("rpsAchieved %g, want 3", rep.RPSAchieved)
	}
}

// TestGatewayStats diffs synthetic gateway scrapes, including the
// per-node request deltas the CI determinism gate compares.
func TestGatewayStats(t *testing.T) {
	if g := gatewayStats(nil, nil, nil); g != nil {
		t.Fatalf("non-gateway target produced a gateway section: %+v", g)
	}
	before := []promtext.Sample{
		{Name: "gpumech_cluster_requests_total", Value: 10},
		{Name: "gpumech_cluster_node_127_0_0_1_8080_requests_total", Value: 6},
	}
	after := []promtext.Sample{
		{Name: "gpumech_cluster_requests_total", Value: 110},
		{Name: "gpumech_cluster_coalesced_total", Value: 7},
		{Name: "gpumech_cluster_failover_total", Value: 1},
		{Name: "gpumech_cluster_node_127_0_0_1_8080_requests_total", Value: 66},
		{Name: "gpumech_cluster_node_127_0_0_1_8081_requests_total", Value: 40},
	}
	results := []outcome{
		{status: 200, route: "sdk_vectoradd|0", node: "http://127.0.0.1:8080"},
		{status: 200, route: "micro_copy|64", node: "http://127.0.0.1:8081"},
		{status: 200, route: ""}, // direct hit without a gateway header: skipped
	}
	g := gatewayStats(before, after, results)
	if g == nil {
		t.Fatal("gateway section missing")
	}
	if g.Requests != 100 || g.Coalesced != 7 || g.Failover != 1 || g.NoBackend != 0 {
		t.Fatalf("gateway deltas: %+v", g)
	}
	want := map[string]float64{"127_0_0_1_8080": 60, "127_0_0_1_8081": 40}
	if !reflect.DeepEqual(g.NodeRequests, want) {
		t.Fatalf("node deltas = %v, want %v", g.NodeRequests, want)
	}
	wantRoutes := map[string]string{
		"sdk_vectoradd|0": "http://127.0.0.1:8080",
		"micro_copy|64":   "http://127.0.0.1:8081",
	}
	if !reflect.DeepEqual(g.Routes, wantRoutes) {
		t.Fatalf("routes = %v, want %v", g.Routes, wantRoutes)
	}
}

// TestStoreStats diffs synthetic profile-store scrapes.
func TestStoreStats(t *testing.T) {
	if s := storeStats(nil, nil); s != nil {
		t.Fatalf("storeless target produced a store section: %+v", s)
	}
	before := []promtext.Sample{{Name: "gpumech_store_hits_total", Value: 2}}
	after := []promtext.Sample{
		{Name: "gpumech_store_hits_total", Value: 5},
		{Name: "gpumech_store_misses_total", Value: 4},
		{Name: "gpumech_store_puts_total", Value: 4},
	}
	s := storeStats(before, after)
	if s == nil {
		t.Fatal("store section missing")
	}
	if s.Hits != 3 || s.Misses != 4 || s.Puts != 4 || s.Corrupt != 0 {
		t.Fatalf("store deltas: %+v", s)
	}
}
