// Command gpumech-bench is a seeded, open-loop load generator for
// gpumech-serve. It plans the entire request sequence up front as a
// pure function of -seed and the kernel list — execution timing can
// never perturb the mix, so two runs with the same seed issue an
// identical workload — then drives the daemon in two phases:
//
//   - a cold phase in which every request carries a never-repeated
//     (kernel, blocks) pair, forcing a session-cache miss and paying
//     the full trace + cache-simulation cost, and
//   - a warm timed phase issued open-loop at -rps (arrivals follow the
//     schedule regardless of completions, so queueing shows up as
//     latency, exactly as it would for real clients), reusing default
//     grids so the session cache is hot.
//
// The report — BENCH_serve.json by convention — carries p50/p90/p99/max
// latency for each phase, achieved RPS, error and shed (429) counts,
// the per-kernel mix, and a per-stage mean breakdown attributed by
// diffing the daemon's /metrics scrape around the run.
//
// Usage:
//
//	gpumech-serve -addr 127.0.0.1:0 &
//	gpumech-bench -addr http://127.0.0.1:PORT -rps 50 -duration 10s
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"gpumech/internal/obs/promtext"
)

// report is the BENCH_serve.json schema. schemaVersion guards readers
// against silent shape drift: version 2 added the optional gateway and
// store sections, present when the benched target's /metrics carries
// cluster.* or store.* samples (a gpumech-gateway, or a gpumech-serve
// started with -profile-store).
type report struct {
	SchemaVersion   int                  `json:"schemaVersion"`
	Seed            int64                `json:"seed"`
	TargetRPS       float64              `json:"targetRPS"`
	DurationSeconds float64              `json:"durationSeconds"`
	Concurrency     int                  `json:"concurrency"`
	Workload        workloadDoc          `json:"workload"`
	RPSAchieved     float64              `json:"rpsAchieved"`
	Errors          int                  `json:"errors"`
	Shed429         int                  `json:"shed429"`
	Overall         latencyStats         `json:"overall"`
	Cold            latencyStats         `json:"cold"`
	Warm            latencyStats         `json:"warm"`
	Stages          map[string]stageMean `json:"stages"`
	Gateway         *gatewaySection      `json:"gateway,omitempty"`
	Store           *storeSection        `json:"store,omitempty"`
}

type workloadDoc struct {
	Kernels      []string       `json:"kernels"`
	Mix          map[string]int `json:"mix"`
	Requests     int            `json:"requests"`
	ColdRequests int            `json:"coldRequests"`
	WarmRequests int            `json:"warmRequests"`
}

// evaluateBody mirrors the serve evaluate request; zero-valued fields
// are omitted so warm requests inherit server defaults.
type evaluateBody struct {
	Kernel string `json:"kernel"`
	Policy string `json:"policy"`
	Warps  int    `json:"warps"`
	Blocks int    `json:"blocks,omitempty"`
}

// outcome is one executed request's result. route and node are set only
// when the target is a gateway (it stamps X-Gpumech-Node): together they
// record which backend served each routing key, the mapping the CI
// determinism gate compares across runs — immune to request coalescing,
// which makes raw per-node counts timing-dependent.
type outcome struct {
	seconds float64
	status  int
	cold    bool
	route   string
	node    string
}

func main() {
	addr := flag.String("addr", "", "gpumech-serve base URL, e.g. http://127.0.0.1:8080 (required)")
	rps := flag.Float64("rps", 25, "open-loop arrival rate for the warm phase, requests/second")
	duration := flag.Duration("duration", 5*time.Second, "warm-phase length; warm requests = rps x duration")
	concurrency := flag.Int("concurrency", 16, "worker connections draining the arrival queue")
	seed := flag.Int64("seed", 1, "workload seed: same seed and kernel list = identical request mix")
	kernelList := flag.String("kernels", "", "comma-separated kernel mix (default: every kernel the server lists)")
	coldN := flag.Int("cold", -1, "cold-phase requests, each forcing a fresh profile session (-1 = one per kernel)")
	out := flag.String("out", "", "report path ('' = $GPUMECH_BENCH_OUT, then BENCH_serve.json; '-' = stdout)")
	flag.Parse()
	if *addr == "" {
		fail(fmt.Errorf("-addr is required"))
	}
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	client := &http.Client{Timeout: 60 * time.Second}

	kernels, err := kernelNames(client, base, *kernelList)
	if err != nil {
		fail(err)
	}
	cold := *coldN
	if cold < 0 {
		cold = len(kernels)
	}
	warm := int(*rps*duration.Seconds() + 0.5)
	if warm < 1 {
		warm = 1
	}
	plan := planWorkload(*seed, kernels, cold, warm)

	before, err := scrape(client, base)
	if err != nil {
		fail(err)
	}

	// Cold phase runs closed-loop and sequential: it measures the cost
	// of a session build, and overlapping builds would measure queueing
	// on the server's singleflight instead.
	results := make([]outcome, 0, len(plan))
	for _, r := range plan[:cold] {
		results = append(results, issue(client, base, r))
	}

	// Warm phase: a dispatcher releases one arrival per tick into a
	// queue sized for the whole phase (open loop — arrivals never wait
	// for completions) and -concurrency workers drain it.
	interval := time.Duration(float64(time.Second) / *rps)
	warmPlan := plan[cold:]
	queue := make(chan benchReq, len(warmPlan))
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		warmRes  = make([]outcome, 0, len(warmPlan))
		warmWall time.Duration
	)
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range queue {
				o := issue(client, base, r)
				mu.Lock()
				warmRes = append(warmRes, o)
				mu.Unlock()
			}
		}()
	}
	start := time.Now()
	for i, r := range warmPlan {
		next := start.Add(time.Duration(i) * interval)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		queue <- r
	}
	close(queue)
	wg.Wait()
	warmWall = time.Since(start)
	results = append(results, warmRes...)

	after, err := scrape(client, base)
	if err != nil {
		fail(err)
	}

	rep := assemble(*seed, *rps, *duration, *concurrency, kernels, plan, results, warmWall, before, after)
	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	doc = append(doc, '\n')

	path := *out
	if path == "" {
		path = os.Getenv("GPUMECH_BENCH_OUT")
	}
	if path == "" {
		path = "BENCH_serve.json"
	}
	if path == "-" {
		os.Stdout.Write(doc)
	} else if err := os.WriteFile(path, doc, 0o644); err != nil {
		fail(err)
	} else {
		fmt.Printf("gpumech-bench: %d requests (%d cold), %.1f rps achieved, p50 %.1fms p99 %.1fms, %d errors, %d shed -> %s\n",
			rep.Workload.Requests, rep.Workload.ColdRequests, rep.RPSAchieved,
			rep.Warm.P50Seconds*1e3, rep.Warm.P99Seconds*1e3, rep.Errors, rep.Shed429, path)
	}
	if rep.Errors > 0 {
		fail(fmt.Errorf("%d requests failed with non-429 errors", rep.Errors))
	}
}

// assemble folds the raw outcomes into the report document. Split from
// main so the report math is testable without a server.
func assemble(seed int64, rps float64, duration time.Duration, concurrency int,
	kernels []string, plan []benchReq, results []outcome, warmWall time.Duration,
	before, after []promtext.Sample) report {
	var all, coldS, warmS []float64
	errs, shed, warmCount := 0, 0, 0
	for _, o := range results {
		all = append(all, o.seconds)
		if o.cold {
			coldS = append(coldS, o.seconds)
		} else {
			warmS = append(warmS, o.seconds)
			warmCount++
		}
		switch {
		case o.status == http.StatusTooManyRequests:
			shed++
		case o.status != http.StatusOK:
			errs++
		}
	}
	achieved := 0.0
	if warmWall > 0 {
		achieved = float64(warmCount) / warmWall.Seconds()
	}
	sorted := append([]string(nil), kernels...)
	sort.Strings(sorted)
	return report{
		SchemaVersion:   2,
		Seed:            seed,
		TargetRPS:       rps,
		DurationSeconds: duration.Seconds(),
		Concurrency:     concurrency,
		Workload: workloadDoc{
			Kernels:      sorted,
			Mix:          kernelMix(plan),
			Requests:     len(plan),
			ColdRequests: len(plan) - warmPlanLen(plan),
			WarmRequests: warmPlanLen(plan),
		},
		RPSAchieved: achieved,
		Errors:      errs,
		Shed429:     shed,
		Overall:     summarize(all),
		Cold:        summarize(coldS),
		Warm:        summarize(warmS),
		Stages:      stageMeans(before, after),
		Gateway:     gatewayStats(before, after, results),
		Store:       storeStats(before, after),
	}
}

// warmPlanLen counts the warm tail of a plan.
func warmPlanLen(plan []benchReq) int {
	n := 0
	for _, r := range plan {
		if !r.Cold {
			n++
		}
	}
	return n
}

// issue executes one planned request and times it end to end.
func issue(client *http.Client, base string, r benchReq) outcome {
	body, err := json.Marshal(evaluateBody{Kernel: r.Kernel, Policy: r.Policy, Warps: r.Warps, Blocks: r.Blocks})
	if err != nil {
		return outcome{cold: r.Cold}
	}
	t0 := time.Now()
	resp, err := client.Post(base+"/v1/evaluate", "application/json", bytes.NewReader(body))
	if err != nil {
		return outcome{seconds: time.Since(t0).Seconds(), cold: r.Cold}
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return outcome{
		seconds: time.Since(t0).Seconds(),
		status:  resp.StatusCode,
		cold:    r.Cold,
		route:   fmt.Sprintf("%s|%d", r.Kernel, r.Blocks),
		node:    resp.Header.Get("X-Gpumech-Node"),
	}
}

// kernelNames resolves the kernel mix: the -kernels flag verbatim, or
// the server's own catalogue (?version=1 skips the instruction census —
// the bench must not warm the server before the cold phase).
func kernelNames(client *http.Client, base, flagVal string) ([]string, error) {
	if flagVal != "" {
		var ks []string
		for _, k := range strings.Split(flagVal, ",") {
			if k = strings.TrimSpace(k); k != "" {
				ks = append(ks, k)
			}
		}
		if len(ks) == 0 {
			return nil, fmt.Errorf("-kernels lists no kernels")
		}
		return ks, nil
	}
	resp, err := client.Get(base + "/v1/kernels?version=1")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/kernels: %s", resp.Status)
	}
	var doc struct {
		Kernels []struct {
			Name string `json:"name"`
		} `json:"kernels"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	ks := make([]string, 0, len(doc.Kernels))
	for _, k := range doc.Kernels {
		ks = append(ks, k.Name)
	}
	if len(ks) == 0 {
		return nil, fmt.Errorf("server lists no kernels")
	}
	return ks, nil
}

// scrape fetches and parses the daemon's /metrics exposition.
func scrape(client *http.Client, base string) ([]promtext.Sample, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return promtext.ParseSamples(data)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gpumech-bench:", err)
	os.Exit(1)
}
